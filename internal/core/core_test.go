package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"secmon/internal/ilp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

const testTol = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// testIndex builds the canonical optimization fixture:
//
//	monitors (cost): m-http (15), m-db (30), m-net (30), m-ids (40)
//	attacks: sqli (w=2, evidence {http-log, sql-audit})
//	         exfil (w=1, evidence {netflow})
//	         dos   (w=1, evidence {ids-alert, netflow})
//
// m-net produces {netflow, http-log}; m-ids produces {ids-alert}.
func testIndex(t *testing.T) *model.Index {
	t.Helper()
	sys, err := model.NewBuilder("core-test").
		Asset("web", "Web server", "host").
		Asset("db", "Database", "host").
		Asset("net", "Network", "network").
		DataType("http-log", "HTTP access log", "web", "src", "url").
		DataType("sql-audit", "SQL audit log", "db", "user", "query").
		DataType("netflow", "Netflow record", "net", "src", "dst").
		DataType("ids-alert", "IDS alert", "net", "sig").
		Monitor("m-http", "Web log collector", "web", 10, 5, "http-log").
		Monitor("m-db", "DB audit", "db", 20, 10, "sql-audit").
		Monitor("m-net", "Netflow probe", "net", 30, 0, "netflow", "http-log").
		Monitor("m-ids", "Network IDS", "net", 25, 15, "ids-alert").
		Attack("sqli", "SQL injection", 2).
		Step("probe", "http-log").
		Step("inject", "http-log", "sql-audit").
		Done().
		Attack("exfil", "Data exfiltration", 1).
		Step("transfer", "netflow").
		Done().
		Attack("dos", "Denial of service", 1).
		Step("flood", "ids-alert", "netflow").
		Done().
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	return idx
}

func TestMaxUtilityZeroBudget(t *testing.T) {
	opt := NewOptimizer(testIndex(t))
	res, err := opt.MaxUtility(0)
	if err != nil {
		t.Fatalf("MaxUtility: %v", err)
	}
	if res.Utility != 0 || res.Cost != 0 || res.Deployment.Len() != 0 {
		t.Errorf("zero-budget result = %+v", res)
	}
	if !res.Proven {
		t.Error("zero-budget result not proven")
	}
}

func TestMaxUtilityFullBudget(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	res, err := opt.MaxUtility(idx.System().TotalMonitorCost())
	if err != nil {
		t.Fatalf("MaxUtility: %v", err)
	}
	if !approx(res.Utility, 1) {
		t.Errorf("utility = %v, want 1 at full budget", res.Utility)
	}
	if res.Cost > idx.System().TotalMonitorCost()+testTol {
		t.Errorf("cost %v exceeds total", res.Cost)
	}
}

func TestMaxUtilityMatchesExhaustive(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	for _, budget := range []float64{0, 15, 30, 45, 60, 75, 90, 115} {
		res, err := opt.MaxUtility(budget)
		if err != nil {
			t.Fatalf("MaxUtility(%v): %v", budget, err)
		}
		ref, err := Exhaustive(idx, budget)
		if err != nil {
			t.Fatalf("Exhaustive(%v): %v", budget, err)
		}
		if !approx(res.Utility, ref.Utility) {
			t.Errorf("budget %v: ILP utility %v != exhaustive %v", budget, res.Utility, ref.Utility)
		}
		if res.Cost > budget+testTol {
			t.Errorf("budget %v: cost %v over budget", budget, res.Cost)
		}
	}
}

func TestMaxUtilityBudget45PrefersNetAndHTTP(t *testing.T) {
	// At budget 45: m-net (30) covers netflow+http-log -> sqli 1/2, exfil 1,
	// dos 1/2 -> (2*0.5+1+0.5)/4 = 0.625; adding m-http adds nothing new.
	// m-http+m-db (45) -> sqli 1 -> 0.5. m-net+m-http (45) -> 0.625.
	// So optimum is m-net (+ possibly m-http pruned away) with 0.625.
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	res, err := opt.MaxUtility(45)
	if err != nil {
		t.Fatalf("MaxUtility: %v", err)
	}
	if !approx(res.Utility, 0.625) {
		t.Errorf("utility = %v, want 0.625", res.Utility)
	}
	if !res.Deployment.Contains("m-net") {
		t.Errorf("deployment %v does not contain m-net", res.Monitors)
	}
	// Pruning must have removed any zero-gain filler monitors.
	for _, id := range res.Monitors {
		trimmed := res.Deployment.Clone()
		trimmed.Remove(id)
		if approx(metrics.Utility(idx, trimmed), res.Utility) {
			t.Errorf("monitor %s is redundant in pruned deployment", id)
		}
	}
}

func TestMaxUtilityWithoutPruningStillOptimal(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx, WithoutPruning())
	res, err := opt.MaxUtility(45)
	if err != nil {
		t.Fatalf("MaxUtility: %v", err)
	}
	if !approx(res.Utility, 0.625) {
		t.Errorf("utility = %v, want 0.625", res.Utility)
	}
}

func TestMaxUtilityExpandedFormulationAgrees(t *testing.T) {
	idx := testIndex(t)
	compact := NewOptimizer(idx)
	expanded := NewOptimizer(idx, WithExpandedFormulation())
	for _, budget := range []float64{15, 45, 75} {
		a, err := compact.MaxUtility(budget)
		if err != nil {
			t.Fatalf("compact(%v): %v", budget, err)
		}
		b, err := expanded.MaxUtility(budget)
		if err != nil {
			t.Fatalf("expanded(%v): %v", budget, err)
		}
		if !approx(a.Utility, b.Utility) {
			t.Errorf("budget %v: compact %v != expanded %v", budget, a.Utility, b.Utility)
		}
	}
}

func TestMaxUtilityIncremental(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	existing := model.NewDeployment("m-ids")

	res, err := opt.MaxUtilityIncremental(30, existing)
	if err != nil {
		t.Fatalf("MaxUtilityIncremental: %v", err)
	}
	if !res.Deployment.Contains("m-ids") {
		t.Error("existing monitor dropped")
	}
	// New spend: only 30 -> m-net is the best addition.
	newSpend := 0.0
	for _, id := range res.Monitors {
		if !existing.Contains(id) {
			m, _ := idx.Monitor(id)
			newSpend += m.TotalCost()
		}
	}
	if newSpend > 30+testTol {
		t.Errorf("new spend %v exceeds incremental budget", newSpend)
	}
	if !res.Deployment.Contains("m-net") {
		t.Errorf("deployment %v should add m-net", res.Monitors)
	}
	// dos fully covered (ids-alert + netflow), exfil 1, sqli 1/2.
	if !approx(res.Utility, (2*0.5+1+1)/4) {
		t.Errorf("utility = %v, want 0.75", res.Utility)
	}
}

func TestMaxUtilityIncrementalUnknownMonitor(t *testing.T) {
	opt := NewOptimizer(testIndex(t))
	_, err := opt.MaxUtilityIncremental(10, model.NewDeployment("ghost"))
	if !errors.Is(err, ErrUnknownMonitor) {
		t.Errorf("error = %v, want ErrUnknownMonitor", err)
	}
}

func TestMaxUtilityBadBudget(t *testing.T) {
	opt := NewOptimizer(testIndex(t))
	for _, b := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := opt.MaxUtility(b); !errors.Is(err, ErrBadBudget) {
			t.Errorf("MaxUtility(%v) error = %v, want ErrBadBudget", b, err)
		}
	}
}

func TestMinCostFullCoverage(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	res, err := opt.MinCost(CoverageTargets{Global: 1})
	if err != nil {
		t.Fatalf("MinCost: %v", err)
	}
	// Full coverage needs sql-audit (m-db), ids-alert (m-ids), netflow
	// (m-net) and http-log (m-net covers it): 30+40+30 = 100.
	if !approx(res.Cost, 100) {
		t.Errorf("cost = %v, want 100 (%v)", res.Cost, res.Monitors)
	}
	if !approx(res.Utility, 1) {
		t.Errorf("utility = %v, want 1", res.Utility)
	}
}

func TestMinCostPartialTargets(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	// Half coverage of every attack: sqli needs 1 of 2, exfil 1 of 1,
	// dos 1 of 2. m-net alone (30) covers http-log + netflow: sqli 1/2,
	// exfil 1, dos 1/2.
	res, err := opt.MinCost(CoverageTargets{Global: 0.5})
	if err != nil {
		t.Fatalf("MinCost: %v", err)
	}
	if !approx(res.Cost, 30) {
		t.Errorf("cost = %v, want 30 (%v)", res.Cost, res.Monitors)
	}
}

func TestMinCostPerAttackOverride(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	res, err := opt.MinCost(CoverageTargets{
		Global:    0,
		PerAttack: map[model.AttackID]float64{"exfil": 1},
	})
	if err != nil {
		t.Fatalf("MinCost: %v", err)
	}
	// Cheapest netflow producer is m-net at 30.
	if !approx(res.Cost, 30) {
		t.Errorf("cost = %v, want 30 (%v)", res.Cost, res.Monitors)
	}
	if metrics.AttackCoverage(idx, res.Deployment, "exfil") < 1-testTol {
		t.Error("exfil not fully covered")
	}
}

func TestMinCostZeroTargetsEmpty(t *testing.T) {
	opt := NewOptimizer(testIndex(t))
	res, err := opt.MinCost(CoverageTargets{Global: 0})
	if err != nil {
		t.Fatalf("MinCost: %v", err)
	}
	if res.Cost != 0 || res.Deployment.Len() != 0 {
		t.Errorf("zero-target result = %v (cost %v)", res.Monitors, res.Cost)
	}
}

func TestMinCostInfeasibleTargets(t *testing.T) {
	// Add an attack whose evidence nobody produces.
	idx := testIndex(t)
	sys := idx.System().Clone()
	sys.DataTypes = append(sys.DataTypes, model.DataType{ID: "memory", Name: "Memory dump"})
	sys.Attacks = append(sys.Attacks, model.Attack{
		ID: "rootkit", Name: "Rootkit", Weight: 1,
		Steps: []model.AttackStep{{Name: "hide", Evidence: []model.DataTypeID{"memory"}}},
	})
	idx2, err := model.NewIndex(sys)
	if err != nil {
		t.Fatal(err)
	}

	opt := NewOptimizer(idx2)
	if _, err := opt.MinCost(CoverageTargets{Global: 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}

	// With the clamp the solve succeeds, covering everything observable.
	clamped := NewOptimizer(idx2, WithClampToAchievable())
	res, err := clamped.MinCost(CoverageTargets{Global: 1})
	if err != nil {
		t.Fatalf("clamped MinCost: %v", err)
	}
	for _, a := range []model.AttackID{"sqli", "exfil", "dos"} {
		if metrics.AttackCoverage(idx2, res.Deployment, a) < 1-testTol {
			t.Errorf("attack %s not fully covered under clamp", a)
		}
	}
}

func TestMinCostBadTargets(t *testing.T) {
	opt := NewOptimizer(testIndex(t))
	for _, bad := range []CoverageTargets{
		{Global: -0.1},
		{Global: 1.1},
		{Global: math.NaN()},
		{PerAttack: map[model.AttackID]float64{"sqli": 2}},
		{PerAttack: map[model.AttackID]float64{"ghost": 0.5}},
	} {
		if _, err := opt.MinCost(bad); !errors.Is(err, ErrBadTarget) {
			t.Errorf("MinCost(%+v) error = %v, want ErrBadTarget", bad, err)
		}
	}
}

func TestMinCostExpandedFormulationAgrees(t *testing.T) {
	idx := testIndex(t)
	compact := NewOptimizer(idx)
	expanded := NewOptimizer(idx, WithExpandedFormulation())
	for _, tau := range []float64{0.25, 0.5, 0.75, 1} {
		a, err := compact.MinCost(CoverageTargets{Global: tau})
		if err != nil {
			t.Fatalf("compact(%v): %v", tau, err)
		}
		b, err := expanded.MinCost(CoverageTargets{Global: tau})
		if err != nil {
			t.Fatalf("expanded(%v): %v", tau, err)
		}
		if !approx(a.Cost, b.Cost) {
			t.Errorf("tau %v: compact cost %v != expanded %v", tau, a.Cost, b.Cost)
		}
	}
}

func TestMinCostIncrementalKeepsExisting(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx)
	existing := model.NewDeployment("m-http")
	res, err := opt.MinCostIncremental(CoverageTargets{Global: 0.5}, existing)
	if err != nil {
		t.Fatalf("MinCostIncremental: %v", err)
	}
	if !res.Deployment.Contains("m-http") {
		t.Error("existing monitor dropped")
	}
}

func TestSolverOptionsPassthrough(t *testing.T) {
	idx := testIndex(t)
	opt := NewOptimizer(idx, WithSolverOptions(ilp.WithoutDiving()))
	res, err := opt.MaxUtility(45)
	if err != nil {
		t.Fatalf("MaxUtility: %v", err)
	}
	if !approx(res.Utility, 0.625) {
		t.Errorf("utility = %v, want 0.625", res.Utility)
	}
}

func TestOptimizerIndexAccessor(t *testing.T) {
	idx := testIndex(t)
	if NewOptimizer(idx).Index() != idx {
		t.Error("Index() did not return the construction index")
	}
}

func TestCoverageTargetsTarget(t *testing.T) {
	c := CoverageTargets{Global: 0.5, PerAttack: map[model.AttackID]float64{"a": 0.9}}
	if c.Target("a") != 0.9 {
		t.Errorf("Target(a) = %v", c.Target("a"))
	}
	if c.Target("b") != 0.5 {
		t.Errorf("Target(b) = %v", c.Target("b"))
	}
}

func TestMaxUtilitySolverLimitNoIncumbentFallsBack(t *testing.T) {
	// Anytime contract: a time limit so tight that the solver stops with no
	// incumbent yields the greedy fallback deployment, not an error.
	idx := testIndex(t)
	opt := NewOptimizer(idx, WithSolverOptions(
		ilp.WithTimeLimit(time.Nanosecond), ilp.WithoutDiving()))
	res, err := opt.MaxUtility(45)
	if err != nil {
		t.Fatalf("limit-stopped solve without incumbent errored: %v", err)
	}
	if !res.Fallback {
		t.Error("limit-stopped solve without incumbent not marked Fallback")
	}
	if res.Proven {
		t.Error("fallback result claims Proven")
	}
	if res.Status != ilp.StatusLimit.String() {
		t.Errorf("fallback status = %q, want %q", res.Status, ilp.StatusLimit)
	}
	if res.Cost > 45+testTol {
		t.Errorf("fallback cost %v over budget", res.Cost)
	}
	greedy, err := Greedy(idx, 45)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if res.Utility != greedy.Utility {
		t.Errorf("fallback utility %v != greedy utility %v", res.Utility, greedy.Utility)
	}
}

func TestMaxUtilityNodeLimitWithIncumbentSucceeds(t *testing.T) {
	// With the diving heuristic an incumbent exists after the first node,
	// so a node-limited solve returns a feasible (possibly unproven)
	// deployment.
	idx := testIndex(t)
	opt := NewOptimizer(idx, WithSolverOptions(ilp.WithMaxNodes(1)))
	res, err := opt.MaxUtility(45)
	if err != nil {
		t.Fatalf("MaxUtility: %v", err)
	}
	if res.Cost > 45+testTol {
		t.Errorf("cost %v over budget", res.Cost)
	}
	if res.Proven && res.Stats.Nodes <= 1 && res.Utility < 0.625-testTol {
		t.Errorf("unexpected result: %+v", res)
	}
}
