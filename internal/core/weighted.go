package core

import (
	"errors"
	"fmt"
	"math"

	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// ErrBadObjectives is returned for negative, non-finite or all-zero
// objective weights.
var ErrBadObjectives = errors.New("core: invalid objective weights")

// Objectives weights the linear goals of the multi-objective deployment
// optimization. All three metrics are linear in the decision variables, so a
// weighted combination remains an exact ILP:
//
//   - Utility: detection utility (evidence coverage), as in MaxUtility.
//   - Richness: data richness (fraction of security-relevant event fields
//     recorded), valuable for forensics beyond mere detection.
//   - Redundancy: mean evidence redundancy (independent monitors per
//     evidence item), valuable against monitor compromise. Unlike the other
//     two it is not capped at 1 per evidence item — each extra producer
//     keeps adding value.
type Objectives struct {
	Utility    float64
	Richness   float64
	Redundancy float64
}

func (w Objectives) validate() error {
	for _, v := range []float64{w.Utility, w.Richness, w.Redundancy} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %+v", ErrBadObjectives, w)
		}
	}
	if w.Utility == 0 && w.Richness == 0 && w.Redundancy == 0 {
		return fmt.Errorf("%w: all weights zero", ErrBadObjectives)
	}
	return nil
}

// WeightedResult extends Result with the component metrics of a
// multi-objective solve.
type WeightedResult struct {
	Result
	// Score is the achieved weighted objective value.
	Score float64 `json:"score"`
	// RichnessValue and RedundancyValue are the component metrics of the
	// selected deployment (Utility lives in the embedded Result).
	RichnessValue   float64 `json:"richness"`
	RedundancyValue float64 `json:"redundancy"`
}

// MaxWeighted computes the deployment maximizing the weighted combination of
// utility, richness and redundancy under the budget. With Objectives{Utility: 1}
// it reduces to MaxUtility (without the minimality pruning, which is only
// valid for pure utility objectives).
func (o *Optimizer) MaxWeighted(budget float64, weights Objectives) (*WeightedResult, error) {
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadBudget, budget)
	}
	if err := weights.validate(); err != nil {
		return nil, err
	}
	if len(o.idx.MonitorIDs()) == 0 {
		res := o.emptyResult()
		res.Budget = budget
		return &WeightedResult{Result: *res}, nil
	}

	f, err := o.buildWeightedFormulation(budget, weights)
	if err != nil {
		return nil, err
	}
	sol, err := f.prob.Solve(o.cfg.solverOptions...)
	if err != nil {
		return nil, fmt.Errorf("core: weighted solve: %w", err)
	}
	switch sol.Status {
	case ilp.StatusOptimal, ilp.StatusFeasible:
	default:
		return nil, fmt.Errorf("core: weighted solve stopped with status %v and no incumbent", sol.Status)
	}

	deployment := f.decode(sol)
	res := o.newResult(deployment, sol)
	res.Budget = budget
	res.BudgetShadowPrice = sol.RootDual(f.budgetRow)
	res.RelaxationUtility = sol.RootObjective

	richness := metrics.Richness(o.idx, deployment)
	redundancy := metrics.MeanRedundancy(o.idx, deployment)
	return &WeightedResult{
		Result:          *res,
		Score:           weights.Utility*res.Utility + weights.Richness*richness + weights.Redundancy*redundancy,
		RichnessValue:   richness,
		RedundancyValue: redundancy,
	}, nil
}

// buildWeightedFormulation is the compact coverage formulation with the
// weighted objective: coverage variables carry utility and richness
// contributions, monitor variables carry redundancy contributions.
func (o *Optimizer) buildWeightedFormulation(budget float64, weights Objectives) (*formulation, error) {
	prob := ilp.NewProblem(lp.Maximize)
	f := &formulation{
		prob:      prob,
		fixed:     model.NewDeployment(),
		monitors:  o.idx.MonitorIDs(),
		budgetRow: -1,
	}
	f.xVars = make([]lp.VarID, len(f.monitors))

	contrib := evidenceContribution(o.idx)
	fieldShare, totalFields := richnessShares(o.idx, contrib)
	relevantCount := len(contrib)

	// Monitor variables: redundancy contribution is the number of relevant
	// evidence data types the monitor produces, normalized the same way as
	// metrics.MeanRedundancy.
	var budgetTerms []lp.Term
	for i, id := range f.monitors {
		m, _ := o.idx.Monitor(id)
		redContribution := 0.0
		if weights.Redundancy > 0 && relevantCount > 0 {
			produced := 0
			for _, d := range m.Produces {
				if _, ok := contrib[d]; ok {
					produced++
				}
			}
			redContribution = weights.Redundancy * float64(produced) / float64(relevantCount)
		}
		v, err := prob.AddBinaryVariable("x:"+string(id), redContribution)
		if err != nil {
			return nil, fmt.Errorf("core: add monitor variable: %w", err)
		}
		f.xVars[i] = v
		prob.SetBranchPriority(v, 1)
		budgetTerms = append(budgetTerms, lp.Term{Var: v, Coeff: m.TotalCost()})
	}
	row, err := prob.AddConstraint("budget", budgetTerms, lp.LE, budget)
	if err != nil {
		return nil, fmt.Errorf("core: budget row: %w", err)
	}
	f.budgetRow = row

	// Coverage variables carry the utility and richness objective shares.
	k := o.corroborationLevel()
	for _, d := range o.idx.DataTypeIDs() {
		u, relevant := contrib[d]
		if !relevant || len(o.idx.Producers(d)) == 0 {
			continue
		}
		obj := weights.Utility * u
		if totalFields > 0 {
			obj += weights.Richness * fieldShare[d]
		}
		z, err := prob.AddVariable("z:"+string(d), 0, 1, obj)
		if err != nil {
			return nil, fmt.Errorf("core: add coverage variable: %w", err)
		}
		if k > 1 {
			prob.SetInteger(z)
		}
		terms := []lp.Term{{Var: z, Coeff: float64(k)}}
		for _, mid := range o.idx.Producers(d) {
			terms = append(terms, lp.Term{Var: f.xVars[f.monitorIndex(mid)], Coeff: -1})
		}
		if _, err := prob.AddConstraint("link:"+string(d), terms, lp.LE, 0); err != nil {
			return nil, fmt.Errorf("core: link row: %w", err)
		}
	}
	return f, nil
}

// richnessShares computes each relevant data type's share of the richness
// metric: fields(d) / total relevant fields (field-less data types count
// one, matching metrics.Richness).
func richnessShares(idx *model.Index, relevant map[model.DataTypeID]float64) (map[model.DataTypeID]float64, int) {
	shares := make(map[model.DataTypeID]float64, len(relevant))
	total := 0
	for d := range relevant {
		info, ok := idx.DataType(d)
		if !ok {
			continue
		}
		nf := len(info.Fields)
		if nf == 0 {
			nf = 1
		}
		shares[d] = float64(nf)
		total += nf
	}
	if total > 0 {
		for d := range shares {
			shares[d] /= float64(total)
		}
	}
	return shares, total
}
