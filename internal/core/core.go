// Package core implements the primary contribution of Thakore, Weaver and
// Sanders (DSN 2016): computing cost-optimal, maximum-utility placements of
// security monitors.
//
// Two exact formulations are provided, both solved with the in-repo
// branch-and-bound solver (internal/ilp):
//
//   - MaxUtility: given a budget, choose the set of monitors that maximizes
//     detection utility (attack-weighted evidence coverage).
//   - MinCost: given per-attack coverage targets, choose the cheapest set of
//     monitors that meets them.
//
// Both support incremental planning, in which an existing deployment is kept
// and only new spending is optimized. The package also provides greedy,
// random and exhaustive baselines used by the paper-reproduction experiments,
// and Pareto sweeps over budget grids.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"secmon/internal/certify"
	"secmon/internal/decomp"
	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// Errors reported by the optimizer.
var (
	// ErrBadBudget is returned for negative or non-finite budgets.
	ErrBadBudget = errors.New("core: invalid budget")
	// ErrBadTarget is returned for coverage targets outside [0, 1].
	ErrBadTarget = errors.New("core: invalid coverage target")
	// ErrInfeasible is returned by MinCost when the targets cannot be met
	// even by deploying every monitor.
	ErrInfeasible = errors.New("core: coverage targets unachievable")
	// ErrUnknownMonitor is returned when a fixed deployment references a
	// monitor absent from the system.
	ErrUnknownMonitor = errors.New("core: unknown monitor")
	// ErrTooLarge is returned by Exhaustive for systems beyond its subset
	// enumeration limit.
	ErrTooLarge = errors.New("core: system too large for exhaustive search")
)

// SolveStats records the effort spent by an exact solve.
type SolveStats struct {
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int `json:"nodes"`
	// LPIterations is the total simplex pivots across all relaxations.
	LPIterations int `json:"lpIterations"`
	// Elapsed is the wall-clock solve duration.
	Elapsed time.Duration `json:"elapsed"`
	// Workers is the number of branch-and-bound workers used (1 for the
	// sequential solver).
	Workers int `json:"workers,omitempty"`
	// WarmAttempts is the number of LP solves given a parent basis to
	// warm-start from; WarmHits counts those the dual simplex accepted.
	WarmAttempts int `json:"warmAttempts,omitempty"`
	WarmHits     int `json:"warmHits,omitempty"`
	// WarmIterations and ColdIterations split LPIterations by solve kind,
	// and ColdSolves counts the solves done from scratch.
	WarmIterations int `json:"warmIterations,omitempty"`
	ColdIterations int `json:"coldIterations,omitempty"`
	ColdSolves     int `json:"coldSolves,omitempty"`
	// PresolveFixed and PresolveTightened count integer variables fixed by
	// reduced-cost arguments and bounds tightened by constraint propagation
	// at the root.
	PresolveFixed     int `json:"presolveFixed,omitempty"`
	PresolveTightened int `json:"presolveTightened,omitempty"`
	// CutsAdded is the number of lifted cover cuts appended at the root;
	// CutsActive counts those binding at the final root relaxation.
	CutsAdded  int `json:"cutsAdded,omitempty"`
	CutsActive int `json:"cutsActive,omitempty"`
	// Etas, Refactorizations and DevexResets aggregate the sparse
	// revised-simplex kernel's effort across all relaxations: eta vectors
	// appended to the basis factorization, from-scratch refactorizations,
	// and devex reference-framework resets. All zero when the dense
	// tableau kernel ran (see WithDenseKernel).
	Etas             int `json:"etas,omitempty"`
	Refactorizations int `json:"refactorizations,omitempty"`
	DevexResets      int `json:"devexResets,omitempty"`
	// Updates, BoundFlips, AdaptiveRefactorizations and FactorNnz report
	// the LU kernel: Forrest-Tomlin updates applied, nonbasic variables
	// flipped by the long-step dual ratio test, refactorizations forced by
	// fill growth, unstable updates or pivot drift, and the largest base
	// factorization's nonzero count. KernelFallbacks counts node solves the
	// sparse kernel declined to the dense oracle.
	Updates                  int `json:"updates,omitempty"`
	BoundFlips               int `json:"boundFlips,omitempty"`
	AdaptiveRefactorizations int `json:"adaptiveRefactorizations,omitempty"`
	FactorNnz                int `json:"factorNnz,omitempty"`
	KernelFallbacks          int `json:"kernelFallbacks,omitempty"`
	// WarmStarted marks an incremental re-solve that reused a previous
	// solve's state — a (possibly remapped) root basis snapshot and/or a
	// repaired incumbent seed; see Prior and the warm entry points
	// MaxUtilityWarm / MinCostWarm.
	WarmStarted bool `json:"warmStarted,omitempty"`
	// Shortcut names the sensitivity shortcut that proved the previous
	// optimum still optimal without running branch-and-bound: "lp-bound"
	// (warm LP relaxation bound collapsed onto the previous incumbent),
	// "reduced-cost" (cost increase confined to unselected monitors),
	// "budget-slack" (budget change the previous deployment absorbs) or
	// "no-op" (the mutation did not touch the formulation). Empty when the
	// full search ran.
	Shortcut string `json:"shortcut,omitempty"`
	// PerWorker breaks Nodes and LPIterations down by worker, indexed by
	// worker id. Empty for the heuristic baselines.
	PerWorker []WorkerLoad `json:"perWorker,omitempty"`
	// Decomposition reports the graph-partitioned decomposition solver's
	// effort (segments, coordinator iterations, gap trajectory, oracle
	// fallbacks). Nil when the monolithic solver ran.
	Decomposition *decomp.Stats `json:"decomposition,omitempty"`
}

// WarmStartHitRate is the fraction of warm-start attempts the dual simplex
// accepted, or 0 when warm starts never ran.
func (s SolveStats) WarmStartHitRate() float64 {
	if s.WarmAttempts == 0 {
		return 0
	}
	return float64(s.WarmHits) / float64(s.WarmAttempts)
}

// WorkerLoad is one worker's share of the branch-and-bound effort.
type WorkerLoad struct {
	Nodes        int `json:"nodes"`
	LPIterations int `json:"lpIterations"`
	WarmAttempts int `json:"warmAttempts,omitempty"`
	WarmHits     int `json:"warmHits,omitempty"`
}

// Result is the outcome of a deployment computation.
type Result struct {
	// Deployment is the selected set of monitors.
	Deployment *model.Deployment `json:"-"`
	// Monitors is the sorted identifier list of the deployment.
	Monitors []model.MonitorID `json:"monitors"`
	// Utility is the detection utility of the deployment, in [0, 1].
	Utility float64 `json:"utility"`
	// Cost is the total cost of the deployment.
	Cost float64 `json:"cost"`
	// Budget is the budget the computation was given (MaxUtility flavors)
	// or 0 for MinCost.
	Budget float64 `json:"budget,omitempty"`
	// Proven is true when the result was proven optimal.
	Proven bool `json:"proven"`
	// Status reports how the exact solve ended: "optimal", "feasible" (a
	// limit or deadline stopped the search but an incumbent was in hand),
	// "interrupted" or "limit" (stopped with no incumbent; Deployment then
	// holds the heuristic fallback). Empty for the heuristic baselines.
	Status string `json:"status,omitempty"`
	// BestBound is the proven bound on the optimal objective — an upper
	// bound on utility for MaxUtility, a lower bound on cost for MinCost —
	// meaningful only when BoundKnown is true. Equal to the objective when
	// Proven.
	BestBound  float64 `json:"bestBound,omitempty"`
	BoundKnown bool    `json:"boundKnown,omitempty"`
	// Gap is the relative optimality gap between the returned deployment's
	// objective and BestBound, 0 when Proven.
	Gap float64 `json:"gap,omitempty"`
	// Interrupted reports that the solve was stopped by context
	// cancellation or an expired deadline (see WithContext).
	Interrupted bool `json:"interrupted,omitempty"`
	// Fallback is true when the solver stopped with no incumbent and the
	// deployment came from a heuristic instead: the greedy cost-benefit
	// baseline for MaxUtility, the full deployment for MinCost.
	Fallback bool `json:"fallback,omitempty"`
	// BudgetShadowPrice estimates the marginal utility of one additional
	// unit of budget, taken from the root LP relaxation's dual price of the
	// budget row (MaxUtility flavors only; zero otherwise). It is the
	// standard what-if answer for "is the monitoring budget worth raising?".
	BudgetShadowPrice float64 `json:"budgetShadowPrice,omitempty"`
	// RelaxationUtility is the root LP relaxation bound on utility
	// (MaxUtility flavors only); the integrality gap is
	// RelaxationUtility - Utility.
	RelaxationUtility float64 `json:"relaxationUtility,omitempty"`
	// Restated is true when the reported deployment was carried over from an
	// earlier budget point of a sweep (stabilization or the warm path's
	// dominance skip) instead of being decoded from this point's own solve.
	// The objective is still this point's proven optimum; only the choice
	// among equal-utility optima came from the neighboring point. Restated
	// results are a function of the whole budget grid, so per-budget-point
	// caches (the serve layer's) must not store them. Not serialized: the
	// HTTP response bytes stay independent of how the point was obtained.
	Restated bool `json:"-"`
	// Stats describes solver effort; zero for the heuristic baselines.
	Stats SolveStats `json:"stats"`
	// Certificate is the machine-checkable optimality (or infeasibility)
	// certificate for the underlying ILP solve, present only when the
	// optimizer ran with WithCertificate and the solve ended proven. It
	// certifies the raw ILP incumbent; the minimality and tie-canonicalization
	// post-passes may swap monitors afterwards but never change the objective
	// the certificate bounds.
	Certificate *certify.Certificate `json:"certificate,omitempty"`
	// CertificateNote explains a missing certificate (limit stop, emission
	// failure) when certification was requested.
	CertificateNote string `json:"certificateNote,omitempty"`
}

// Optimizer computes deployments for one indexed system.
type Optimizer struct {
	idx *model.Index
	cfg options
}

// Option configures an Optimizer.
type Option interface {
	apply(*options)
}

type options struct {
	expanded      bool
	noPrune       bool
	clampTargets  bool
	corroboration int
	certify       bool
	solverOptions []ilp.Option
	// noSweepWarm pins ParetoSweepWarm to the cold per-point path.
	noSweepWarm bool
	// decompose selects the decomposition solver: 0 auto (size threshold),
	// 1 forced on, -1 forced off. The fields below mirror solver options the
	// decomposition coordinator needs to see directly.
	decompose int
	workers   int
	ctx       context.Context
	kernel    lp.Kernel
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithExpandedFormulation selects the per-(attack, evidence) coverage
// variables used by the paper's straightforward ILP encoding instead of the
// compact shared-per-data-type encoding. Both are exact; the expanded form
// exists for the formulation-size ablation experiment.
func WithExpandedFormulation() Option {
	return optionFunc(func(o *options) { o.expanded = true })
}

// WithoutPruning disables the minimality post-pass that removes monitors
// whose removal does not reduce utility (only MaxUtility results are pruned;
// pruning never changes utility, only cost).
func WithoutPruning() Option {
	return optionFunc(func(o *options) { o.noPrune = true })
}

// WithClampToAchievable makes MinCost clamp each attack's coverage target to
// the achievable maximum (some evidence may have no producer) instead of
// reporting ErrInfeasible.
func WithClampToAchievable() Option {
	return optionFunc(func(o *options) { o.clampTargets = true })
}

// WithCorroboration requires every counted evidence item to be produced by
// at least k deployed monitors (k >= 2; k <= 1 is the default single-monitor
// coverage). MaxUtility then maximizes metrics.CorroboratedUtility and
// MinCost targets corroborated coverage — the deployment stays effective
// when any single monitor is compromised or fails.
func WithCorroboration(k int) Option {
	return optionFunc(func(o *options) { o.corroboration = k })
}

// WithSolverOptions passes options to the branch-and-bound solver (node and
// time limits, gap tolerance, diving ablation). Repeated uses accumulate,
// so it composes with WithWorkers.
func WithSolverOptions(opts ...ilp.Option) Option {
	return optionFunc(func(o *options) { o.solverOptions = append(o.solverOptions, opts...) })
}

// WithCertificate makes every exact solve emit a machine-checkable
// optimality certificate (see internal/certify), attached to
// Result.Certificate. Certification forces cuts and reduced-cost presolve
// off, so solves may explore more nodes than the default configuration.
func WithCertificate() Option {
	return optionFunc(func(o *options) {
		o.certify = true
		o.solverOptions = append(o.solverOptions, ilp.WithCertificate())
	})
}

// WithWorkers sets the number of parallel branch-and-bound workers. 1 is
// the sequential solver; values <= 0 select runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return optionFunc(func(o *options) {
		o.workers = n
		o.solverOptions = append(o.solverOptions, ilp.WithWorkers(n))
	})
}

// WithKernel selects the LP simplex kernel for every relaxation solve.
// lp.KernelAuto (the zero value) defers to the solver default (sparse).
func WithKernel(k lp.Kernel) Option {
	return optionFunc(func(o *options) {
		o.kernel = k
		o.solverOptions = append(o.solverOptions, ilp.WithKernel(k))
	})
}

// WithDenseKernel routes every LP relaxation to the dense tableau kernel,
// the correctness oracle for the default sparse revised simplex.
func WithDenseKernel() Option { return WithKernel(lp.KernelDense) }

// WithContext attaches ctx to every solve the optimizer runs. Cancellation
// or an expired deadline stops the branch-and-bound anytime-style: the best
// incumbent found so far is returned (Status "feasible", Gap reported
// against the proven bound), and when no incumbent exists yet the optimizer
// falls back to a heuristic deployment (Fallback true) rather than erroring.
func WithContext(ctx context.Context) Option {
	return optionFunc(func(o *options) {
		o.ctx = ctx
		o.solverOptions = append(o.solverOptions, ilp.WithContext(ctx))
	})
}

// WithDecomposition forces the graph-partitioned decomposition solver on for
// every exact solve, regardless of instance size. Decomposition is exact: it
// returns proven-optimal deployments (or falls back to the monolithic solver,
// counted in SolveStats.Decomposition.OracleFallbacks). It is only compatible
// with the compact single-coverage formulation: the expanded ablation
// encoding, corroboration levels >= 2, certification and the dense oracle
// kernel all silently keep the monolithic path. Decomposed solves do not
// report RelaxationUtility (there is no single root LP).
func WithDecomposition() Option {
	return optionFunc(func(o *options) { o.decompose = 1 })
}

// WithoutSweepWarmStart makes ParetoSweepWarm solve every budget point from
// cold instead of chaining the previous point's basis and incumbent — the
// escape hatch for the warm-shared sweep path, and the reference the
// sweep-equivalence suite compares it against. Results are identical either
// way (objective, status and monitor sets); only solver effort differs.
func WithoutSweepWarmStart() Option {
	return optionFunc(func(o *options) { o.noSweepWarm = true })
}

// WithoutDecomposition pins every exact solve to the monolithic solver, even
// above the automatic size threshold.
func WithoutDecomposition() Option {
	return optionFunc(func(o *options) { o.decompose = -1 })
}

// NewOptimizer returns an optimizer for the indexed system.
func NewOptimizer(idx *model.Index, opts ...Option) *Optimizer {
	o := &Optimizer{idx: idx}
	for _, opt := range opts {
		opt.apply(&o.cfg)
	}
	return o
}

// MaxUtility computes the deployment of maximum detection utility whose cost
// does not exceed budget.
func (o *Optimizer) MaxUtility(budget float64) (*Result, error) {
	return o.MaxUtilityIncremental(budget, nil)
}

// MaxUtilityIncremental computes the maximum-utility deployment that keeps
// every monitor of the existing deployment and spends at most budget on new
// monitors. The existing monitors' cost does not count against the budget.
func (o *Optimizer) MaxUtilityIncremental(budget float64, existing *model.Deployment) (*Result, error) {
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadBudget, budget)
	}
	fixed, err := o.fixedSet(existing)
	if err != nil {
		return nil, err
	}
	if len(o.idx.MonitorIDs()) == 0 {
		res := o.emptyResult()
		res.Budget = budget
		return res, nil
	}
	if o.shouldDecompose() {
		res, err := o.maxUtilityDecomposed(budget, fixed)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		// Not decomposable: continue on the monolithic path.
	}

	res, _, err := o.maxUtilityMono(budget, fixed)
	return res, err
}

// maxUtilityMono runs the monolithic MaxUtility solve and returns the raw
// ILP solution alongside the result, so coordinator loops (the warm-shared
// Pareto sweep) can chain the final root basis and incumbent into the next
// solve. extra options are appended after the optimizer's own solver
// options; they must be performance hints only (warm bases, seeds,
// workspaces), never options that change the proven optimum.
func (o *Optimizer) maxUtilityMono(budget float64, fixed *model.Deployment, extra ...ilp.Option) (*Result, *ilp.Solution, error) {
	f, err := o.buildFormulation(formulationSpec{budget: budget, fixed: fixed})
	if err != nil {
		return nil, nil, err
	}
	return o.solveMaxUtilityFormulation(f, budget, fixed, extra...)
}

// solveMaxUtilityFormulation runs the exact solve on an already-built
// MaxUtility formulation; see maxUtilityMono.
func (o *Optimizer) solveMaxUtilityFormulation(f *formulation, budget float64, fixed *model.Deployment, extra ...ilp.Option) (*Result, *ilp.Solution, error) {
	solverOpts := o.cfg.solverOptions
	if len(extra) > 0 {
		solverOpts = append(append([]ilp.Option{}, solverOpts...), extra...)
	}
	sol, err := f.prob.Solve(solverOpts...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: max-utility solve: %w", err)
	}
	switch sol.Status {
	case ilp.StatusOptimal, ilp.StatusFeasible:
	case ilp.StatusInfeasible:
		// Only possible when fixing an existing deployment that itself
		// exceeds... fixing never conflicts with the budget (fixed cost is
		// excluded), so treat as a solver-level surprise.
		return nil, nil, fmt.Errorf("core: max-utility unexpectedly infeasible")
	case ilp.StatusLimit, ilp.StatusInterrupted:
		// Stopped before any integer incumbent existed: fall back to the
		// greedy cost-benefit baseline so the caller still gets a feasible
		// deployment, reported against whatever bound the search proved.
		res := o.maxUtilityFallback(budget, fixed, sol)
		res.BudgetShadowPrice = sol.RootDual(f.budgetRow)
		res.RelaxationUtility = sol.RootObjective
		return res, sol, nil
	default:
		return nil, nil, fmt.Errorf("core: max-utility solve stopped with status %v and no incumbent", sol.Status)
	}

	deployment := f.decode(sol)
	if !o.cfg.noPrune {
		o.pruneRedundant(deployment, fixed)
		o.canonicalizeTies(deployment, fixed)
	}
	res := o.newResult(deployment, sol)
	res.Budget = budget
	res.BudgetShadowPrice = sol.RootDual(f.budgetRow)
	res.RelaxationUtility = sol.RootObjective
	return res, sol, nil
}

// CoverageTargets specifies MinCost requirements: Global applies to every
// attack unless overridden in PerAttack. Targets are fractions of each
// attack's evidence union, in [0, 1].
type CoverageTargets struct {
	Global    float64
	PerAttack map[model.AttackID]float64
}

// Target returns the effective target for an attack.
func (c CoverageTargets) Target(a model.AttackID) float64 {
	if t, ok := c.PerAttack[a]; ok {
		return t
	}
	return c.Global
}

// MinCost computes the cheapest deployment meeting the coverage targets.
func (o *Optimizer) MinCost(targets CoverageTargets) (*Result, error) {
	return o.MinCostIncremental(targets, nil)
}

// MinCostIncremental computes the cheapest deployment that meets the
// coverage targets while keeping every monitor of the existing deployment.
func (o *Optimizer) MinCostIncremental(targets CoverageTargets, existing *model.Deployment) (*Result, error) {
	if err := o.validateTargets(targets); err != nil {
		return nil, err
	}
	fixed, err := o.fixedSet(existing)
	if err != nil {
		return nil, err
	}
	if len(o.idx.MonitorIDs()) == 0 {
		for _, aid := range o.idx.AttackIDs() {
			if _, err := o.requiredEvidence(aid, &targets); err != nil {
				return nil, err
			}
		}
		return o.emptyResult(), nil
	}

	if o.shouldDecompose() {
		res, err := o.minCostDecomposed(targets, fixed)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		// Not decomposable: continue on the monolithic path.
	}

	f, err := o.buildFormulation(formulationSpec{minCost: true, targets: &targets, fixed: fixed})
	if err != nil {
		return nil, err
	}
	res, _, err := o.solveMinCostFormulation(f)
	return res, err
}

// solveMinCostFormulation runs the exact solve on an already-built MinCost
// formulation and returns the raw ILP solution alongside the result, so
// incremental re-solve loops can chain the final root basis into the next
// solve. extra options must be performance hints only (warm bases, seeds,
// workspaces), never options that change the proven optimum.
func (o *Optimizer) solveMinCostFormulation(f *formulation, extra ...ilp.Option) (*Result, *ilp.Solution, error) {
	solverOpts := o.cfg.solverOptions
	if len(extra) > 0 {
		solverOpts = append(append([]ilp.Option{}, solverOpts...), extra...)
	}
	sol, err := f.prob.Solve(solverOpts...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: min-cost solve: %w", err)
	}
	switch sol.Status {
	case ilp.StatusOptimal, ilp.StatusFeasible:
	case ilp.StatusInfeasible:
		return nil, nil, ErrInfeasible
	case ilp.StatusLimit, ilp.StatusInterrupted:
		// Stopped before any integer incumbent existed. Deploying every
		// monitor achieves the maximum achievable coverage, so it is
		// feasible whenever the instance is; if even the full deployment
		// misses a target, the instance is infeasible and the interrupted
		// search simply did not get to prove it.
		return o.minCostFallback(sol), sol, nil
	default:
		return nil, nil, fmt.Errorf("core: min-cost solve stopped with status %v and no incumbent", sol.Status)
	}

	deployment := f.decode(sol)
	return o.newResult(deployment, sol), sol, nil
}

func (o *Optimizer) validateTargets(targets CoverageTargets) error {
	check := func(t float64) error {
		if t < 0 || t > 1 || math.IsNaN(t) {
			return fmt.Errorf("%w: %v", ErrBadTarget, t)
		}
		return nil
	}
	if err := check(targets.Global); err != nil {
		return err
	}
	for a, t := range targets.PerAttack {
		if _, ok := o.idx.Attack(a); !ok {
			return fmt.Errorf("%w: coverage target for unknown attack %q", ErrBadTarget, a)
		}
		if err := check(t); err != nil {
			return err
		}
	}
	return nil
}

// fixedSet validates an existing deployment against the system.
func (o *Optimizer) fixedSet(existing *model.Deployment) (*model.Deployment, error) {
	if existing == nil {
		return model.NewDeployment(), nil
	}
	for _, id := range existing.IDs() {
		if _, ok := o.idx.Monitor(id); !ok {
			return nil, fmt.Errorf("%w: %q in existing deployment", ErrUnknownMonitor, id)
		}
	}
	return existing.Clone(), nil
}

// pruneRedundant removes monitors (except fixed ones) whose removal leaves
// the optimized objective unchanged, making reported deployments minimal.
// Under corroboration the corroborated utility is preserved (plain utility
// alone would wrongly discard corroborating monitors). Deterministic:
// monitors are considered in sorted order.
func (o *Optimizer) pruneRedundant(d *model.Deployment, fixed *model.Deployment) {
	k := o.corroborationLevel()
	ev := metrics.NewEvaluator(o.idx)
	ev.Load(d)
	utility := ev.CorroboratedUtility(k)
	for _, id := range d.IDs() {
		if fixed.Contains(id) {
			continue
		}
		d.Remove(id)
		ev.Remove(id)
		if ev.CorroboratedUtility(k) < utility-1e-12 {
			d.Add(id)
			ev.Add(id)
		}
	}
}

// canonicalizeTies rewrites the deployment into the lexicographically
// smallest member of its equal-cost, equal-objective swap neighborhood.
// Degenerate instances (symmetric hosts, duplicated monitors) admit many
// optimal deployments, and which one branch-and-bound lands on depends on
// solver trajectory — feature flags, worker count, and LP kernel all perturb
// it. Swapping a selected monitor for an unselected one that sorts earlier,
// whenever the swap changes neither the objective nor the cost, collapses
// those alternate optima onto one canonical representative, so reported
// deployments are reproducible across solver configurations. Fixed monitors
// are never swapped out.
func (o *Optimizer) canonicalizeTies(d *model.Deployment, fixed *model.Deployment) {
	const tol = 1e-9
	k := o.corroborationLevel()
	ev := metrics.NewEvaluator(o.idx)
	ev.Load(d)
	all := o.idx.MonitorIDs() // sorted
	costs := make([]float64, len(all))
	for i, id := range all {
		m, _ := o.idx.Monitor(id)
		costs[i] = m.TotalCost()
	}
	for changed := true; changed; {
		changed = false
		for _, s := range d.IDs() {
			if fixed.Contains(s) {
				continue
			}
			sm, ok := o.idx.Monitor(s)
			if !ok {
				continue
			}
			base := ev.CorroboratedUtility(k)
			for i, u := range all {
				if u >= s {
					break // only strictly earlier replacements shrink the set
				}
				if d.Contains(u) {
					continue
				}
				if math.Abs(costs[i]-sm.TotalCost()) > tol {
					continue // cost must be untouched to stay within budget
				}
				d.Remove(s)
				d.Add(u)
				ev.Remove(s)
				ev.Add(u)
				if math.Abs(ev.CorroboratedUtility(k)-base) <= tol {
					changed = true
					break
				}
				d.Remove(u)
				d.Add(s)
				ev.Remove(u)
				ev.Add(s)
			}
		}
	}
}

// corroborationLevel returns the effective corroboration requirement (>= 1).
func (o *Optimizer) corroborationLevel() int {
	if o.cfg.corroboration < 1 {
		return 1
	}
	return o.cfg.corroboration
}

func (o *Optimizer) newResult(d *model.Deployment, sol *ilp.Solution) *Result {
	return &Result{
		Deployment:      d,
		Monitors:        d.IDs(),
		Utility:         metrics.Utility(o.idx, d),
		Cost:            metrics.Cost(o.idx, d),
		Proven:          sol.Status == ilp.StatusOptimal,
		Status:          sol.Status.String(),
		BestBound:       sol.BestBound,
		BoundKnown:      sol.BoundKnown,
		Gap:             sol.Gap,
		Interrupted:     sol.Interrupted,
		Stats:           newSolveStats(sol),
		Certificate:     sol.Certificate,
		CertificateNote: sol.CertificateNote,
	}
}

// maxUtilityFallback builds the incumbent-less MaxUtility result from the
// greedy cost-benefit baseline (seeded with the fixed deployment, whose cost
// does not count against the budget, mirroring the exact formulation).
func (o *Optimizer) maxUtilityFallback(budget float64, fixed *model.Deployment, sol *ilp.Solution) *Result {
	d := greedyFrom(o.idx, budget, fixed)
	res := o.newResult(d, sol)
	res.Budget = budget
	res.Fallback = true
	if res.BoundKnown {
		obj := metrics.CorroboratedUtility(o.idx, d, o.corroborationLevel())
		res.Gap = math.Abs(res.BestBound-obj) / math.Max(1, math.Abs(obj))
	}
	return res
}

// minCostFallback builds the incumbent-less MinCost result from the full
// deployment, the maximum-coverage (and most expensive) feasible choice.
func (o *Optimizer) minCostFallback(sol *ilp.Solution) *Result {
	d := model.NewDeployment()
	for _, id := range o.idx.MonitorIDs() {
		d.Add(id)
	}
	res := o.newResult(d, sol)
	res.Fallback = true
	if res.BoundKnown {
		res.Gap = math.Abs(res.BestBound-res.Cost) / math.Max(1, math.Abs(res.Cost))
	}
	return res
}

func newSolveStats(sol *ilp.Solution) SolveStats {
	st := SolveStats{
		Nodes:             sol.Nodes,
		LPIterations:      sol.LPIterations,
		Elapsed:           sol.Elapsed,
		Workers:           sol.Workers,
		WarmAttempts:      sol.WarmAttempts,
		WarmHits:          sol.WarmHits,
		WarmIterations:    sol.WarmIterations,
		ColdIterations:    sol.ColdIterations,
		ColdSolves:        sol.ColdSolves,
		PresolveFixed:     sol.PresolveFixed,
		PresolveTightened: sol.PresolveTightened,
		CutsAdded:         sol.CutsAdded,
		CutsActive:        sol.CutsActive,
		Etas:              sol.Etas,
		Refactorizations:  sol.Refactorizations,
		DevexResets:       sol.DevexResets,

		Updates:                  sol.Updates,
		BoundFlips:               sol.BoundFlips,
		AdaptiveRefactorizations: sol.AdaptiveRefactorizations,
		FactorNnz:                sol.FactorNnz,
		KernelFallbacks:          sol.KernelFallbacks,
	}
	if len(sol.PerWorker) > 0 {
		st.PerWorker = make([]WorkerLoad, len(sol.PerWorker))
		for i, w := range sol.PerWorker {
			st.PerWorker[i] = WorkerLoad{
				Nodes:        w.Nodes,
				LPIterations: w.LPIterations,
				WarmAttempts: w.WarmAttempts,
				WarmHits:     w.WarmHits,
			}
		}
	}
	return st
}

// Index returns the optimizer's system index.
func (o *Optimizer) Index() *model.Index { return o.idx }
