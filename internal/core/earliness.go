package core

import (
	"fmt"
	"math"

	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// EarlinessResult extends Result with the earliness achieved by an
// earliness-aware solve.
type EarlinessResult struct {
	Result
	// EarlinessValue is metrics.Earliness of the selected deployment.
	EarlinessValue float64 `json:"earliness"`
	// Score is the achieved weighted objective
	// utilityWeight*Utility + earlinessWeight*Earliness.
	Score float64 `json:"score"`
}

// MaxEarliness computes the deployment maximizing
//
//	utilityWeight * Utility + earlinessWeight * Earliness
//
// under the budget. Earliness rewards observing attacks in their earliest
// steps: an attack whose first observable step is step s of S contributes
// 1 - (s-1)/S (1 for the first step, decreasing linearly, 0 if unobserved).
//
// Although earliness is a maximum over steps, it is encoded exactly: with
// per-step observability indicators u_s and the telescoping identity
//
//	max_s e_s*u_s = sum_s (e_s - e_{s+1}) * OR(u_1..u_s)
//
// for decreasing step values e_s, the OR terms relax to linear rows whose
// objective coefficients are non-negative, so the LP drives them to their
// exact values once the monitor variables are integral.
func (o *Optimizer) MaxEarliness(budget, utilityWeight, earlinessWeight float64) (*EarlinessResult, error) {
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadBudget, budget)
	}
	if utilityWeight < 0 || earlinessWeight < 0 ||
		math.IsNaN(utilityWeight) || math.IsNaN(earlinessWeight) ||
		math.IsInf(utilityWeight, 0) || math.IsInf(earlinessWeight, 0) ||
		(utilityWeight == 0 && earlinessWeight == 0) {
		return nil, fmt.Errorf("%w: utility %v, earliness %v", ErrBadObjectives, utilityWeight, earlinessWeight)
	}
	if len(o.idx.MonitorIDs()) == 0 {
		res := o.emptyResult()
		res.Budget = budget
		return &EarlinessResult{Result: *res}, nil
	}

	f, err := o.buildEarlinessFormulation(budget, utilityWeight, earlinessWeight)
	if err != nil {
		return nil, err
	}
	sol, err := f.prob.Solve(o.cfg.solverOptions...)
	if err != nil {
		return nil, fmt.Errorf("core: earliness solve: %w", err)
	}
	switch sol.Status {
	case ilp.StatusOptimal, ilp.StatusFeasible:
	default:
		return nil, fmt.Errorf("core: earliness solve stopped with status %v and no incumbent", sol.Status)
	}

	deployment := f.decode(sol)
	objective := func() float64 {
		return utilityWeight*metrics.Utility(o.idx, deployment) +
			earlinessWeight*metrics.Earliness(o.idx, deployment)
	}
	if !o.cfg.noPrune {
		before := objective()
		for _, id := range deployment.IDs() {
			deployment.Remove(id)
			if objective() < before-1e-12 {
				deployment.Add(id)
			}
		}
	}

	res := o.newResult(deployment, sol)
	res.Budget = budget
	res.BudgetShadowPrice = sol.RootDual(f.budgetRow)
	res.RelaxationUtility = sol.RootObjective
	earliness := metrics.Earliness(o.idx, deployment)
	return &EarlinessResult{
		Result:         *res,
		EarlinessValue: earliness,
		Score:          utilityWeight*res.Utility + earlinessWeight*earliness,
	}, nil
}

// buildEarlinessFormulation constructs the weighted utility+earliness ILP.
func (o *Optimizer) buildEarlinessFormulation(budget, utilityWeight, earlinessWeight float64) (*formulation, error) {
	prob := ilp.NewProblem(lp.Maximize)
	f := &formulation{
		prob:      prob,
		fixed:     model.NewDeployment(),
		monitors:  o.idx.MonitorIDs(),
		budgetRow: -1,
	}
	f.xVars = make([]lp.VarID, len(f.monitors))

	var budgetTerms []lp.Term
	for i, id := range f.monitors {
		m, _ := o.idx.Monitor(id)
		v, err := prob.AddBinaryVariable("x:"+string(id), 0)
		if err != nil {
			return nil, fmt.Errorf("core: add monitor variable: %w", err)
		}
		f.xVars[i] = v
		prob.SetBranchPriority(v, 1)
		budgetTerms = append(budgetTerms, lp.Term{Var: v, Coeff: m.TotalCost()})
	}
	row, err := prob.AddConstraint("budget", budgetTerms, lp.LE, budget)
	if err != nil {
		return nil, fmt.Errorf("core: budget row: %w", err)
	}
	f.budgetRow = row

	// Shared coverage variables carry the utility objective.
	contrib := evidenceContribution(o.idx)
	zVars := make(map[model.DataTypeID]lp.VarID, len(contrib))
	for _, d := range o.idx.DataTypeIDs() {
		share, relevant := contrib[d]
		if !relevant || len(o.idx.Producers(d)) == 0 {
			continue
		}
		z, err := prob.AddVariable("z:"+string(d), 0, 1, utilityWeight*share)
		if err != nil {
			return nil, fmt.Errorf("core: add coverage variable: %w", err)
		}
		zVars[d] = z
		terms := []lp.Term{{Var: z, Coeff: 1}}
		for _, mid := range o.idx.Producers(d) {
			terms = append(terms, lp.Term{Var: f.xVars[f.monitorIndex(mid)], Coeff: -1})
		}
		if _, err := prob.AddConstraint("link:"+string(d), terms, lp.LE, 0); err != nil {
			return nil, fmt.Errorf("core: link row: %w", err)
		}
	}

	if earlinessWeight == 0 {
		return f, nil
	}

	// Earliness: per attack, per step, u_s <= sum of the step's covered
	// evidence, and prefix OR variables v_s <= u_1 + ... + u_s with the
	// telescoped objective coefficients.
	totalWeight := o.idx.System().TotalAttackWeight()
	if totalWeight == 0 {
		return f, nil
	}
	for _, aid := range o.idx.AttackIDs() {
		attack, _ := o.idx.Attack(aid)
		nSteps := len(attack.Steps)
		if nSteps == 0 {
			continue
		}
		weight := model.AttackWeight(*attack) / totalWeight

		uVars := make([]lp.Term, 0, nSteps)
		for si, step := range attack.Steps {
			var evTerms []lp.Term
			for _, e := range step.Evidence {
				if z, ok := zVars[e]; ok {
					evTerms = append(evTerms, lp.Term{Var: z, Coeff: -1})
				}
			}
			u, err := prob.AddVariable(fmt.Sprintf("u:%s:%d", aid, si), 0, 1, 0)
			if err != nil {
				return nil, fmt.Errorf("core: add step variable: %w", err)
			}
			terms := append([]lp.Term{{Var: u, Coeff: 1}}, evTerms...)
			if _, err := prob.AddConstraint(fmt.Sprintf("step:%s:%d", aid, si), terms, lp.LE, 0); err != nil {
				return nil, fmt.Errorf("core: step row: %w", err)
			}
			uVars = append(uVars, lp.Term{Var: u, Coeff: -1})

			// Prefix OR variable for steps 1..si with telescoped objective
			// coefficient e_si - e_{si+1} (e_s = 1 - s/S, e_{S+1} = 0).
			eHere := 1 - float64(si)/float64(nSteps)
			eNext := 0.0
			if si+1 < nSteps {
				eNext = 1 - float64(si+1)/float64(nSteps)
			}
			coeff := weight * earlinessWeight * (eHere - eNext)
			v, err := prob.AddVariable(fmt.Sprintf("v:%s:%d", aid, si), 0, 1, coeff)
			if err != nil {
				return nil, fmt.Errorf("core: add prefix variable: %w", err)
			}
			prefix := append([]lp.Term{{Var: v, Coeff: 1}}, uVars...)
			if _, err := prob.AddConstraint(fmt.Sprintf("prefix:%s:%d", aid, si), prefix, lp.LE, 0); err != nil {
				return nil, fmt.Errorf("core: prefix row: %w", err)
			}
		}
	}
	return f, nil
}
