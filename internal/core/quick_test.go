package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secmon/internal/metrics"
	"secmon/internal/model"
	"secmon/internal/synth"
)

func randomIndex(t *testing.T, seed int64, monitors, attacks int) *model.Index {
	t.Helper()
	sys, err := synth.Generate(synth.Config{
		Seed:      seed,
		Monitors:  monitors,
		Attacks:   attacks,
		Assets:    3,
		DataTypes: monitors + 2,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	return idx
}

// TestQuickMaxUtilityMatchesExhaustive cross-checks the ILP against subset
// enumeration on random systems small enough to enumerate.
func TestQuickMaxUtilityMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	property := func(seed int64) bool {
		idx := randomIndex(t, seed, 4+r.Intn(6), 2+r.Intn(6))
		budget := idx.System().TotalMonitorCost() * r.Float64()

		opt := NewOptimizer(idx)
		res, err := opt.MaxUtility(budget)
		if err != nil {
			t.Logf("MaxUtility: %v", err)
			return false
		}
		ref, err := Exhaustive(idx, budget)
		if err != nil {
			t.Logf("Exhaustive: %v", err)
			return false
		}
		if !approx(res.Utility, ref.Utility) {
			t.Logf("seed %d budget %v: ILP %v != exhaustive %v", seed, budget, res.Utility, ref.Utility)
			return false
		}
		if res.Cost > budget+1e-6 {
			t.Logf("seed %d: cost %v over budget %v", seed, res.Cost, budget)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreedyNeverBeatsILP checks the dominance relation that experiment
// E4 visualizes.
func TestQuickGreedyNeverBeatsILP(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	property := func(seed int64) bool {
		idx := randomIndex(t, seed, 5+r.Intn(10), 3+r.Intn(8))
		budget := idx.System().TotalMonitorCost() * r.Float64()

		opt := NewOptimizer(idx)
		exact, err := opt.MaxUtility(budget)
		if err != nil {
			return false
		}
		greedy, err := Greedy(idx, budget)
		if err != nil {
			return false
		}
		rnd, err := RandomDeployment(idx, budget, seed)
		if err != nil {
			return false
		}
		if greedy.Utility > exact.Utility+1e-6 {
			t.Logf("seed %d: greedy %v beats exact %v", seed, greedy.Utility, exact.Utility)
			return false
		}
		if rnd.Utility > exact.Utility+1e-6 {
			t.Logf("seed %d: random %v beats exact %v", seed, rnd.Utility, exact.Utility)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompactAndExpandedFormulationsAgree checks the formulation
// ablation: both encodings must produce the same optimum.
func TestQuickCompactAndExpandedFormulationsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	property := func(seed int64) bool {
		idx := randomIndex(t, seed, 4+r.Intn(6), 2+r.Intn(5))
		budget := idx.System().TotalMonitorCost() * r.Float64()

		a, err := NewOptimizer(idx).MaxUtility(budget)
		if err != nil {
			return false
		}
		b, err := NewOptimizer(idx, WithExpandedFormulation()).MaxUtility(budget)
		if err != nil {
			return false
		}
		if !approx(a.Utility, b.Utility) {
			t.Logf("seed %d: compact %v != expanded %v", seed, a.Utility, b.Utility)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinCostMeetsTargets verifies that MinCost solutions actually
// satisfy the requested coverage on every attack (with the achievability
// clamp, since random systems may contain unobservable evidence).
func TestQuickMinCostMeetsTargets(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	property := func(seed int64) bool {
		idx := randomIndex(t, seed, 5+r.Intn(8), 3+r.Intn(6))
		tau := 0.25 + 0.75*r.Float64()

		opt := NewOptimizer(idx, WithClampToAchievable())
		res, err := opt.MinCost(CoverageTargets{Global: tau})
		if err != nil {
			t.Logf("MinCost: %v", err)
			return false
		}
		for _, aid := range idx.AttackIDs() {
			ev := idx.AttackEvidence(aid)
			achievable := float64(idx.ObservableEvidence(aid)) / float64(len(ev))
			want := tau
			if achievable < want {
				want = achievable
			}
			if metrics.AttackCoverage(idx, res.Deployment, aid) < want-1e-6 {
				t.Logf("seed %d: attack %s coverage %v below target %v",
					seed, aid, metrics.AttackCoverage(idx, res.Deployment, aid), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinCostIsCheapestAmongExhaustive cross-checks MinCost against
// enumeration: no subset meeting the targets may be cheaper.
func TestQuickMinCostIsCheapestAmongExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	property := func(seed int64) bool {
		idx := randomIndex(t, seed, 4+r.Intn(5), 2+r.Intn(4))
		tau := 0.25 + 0.7*r.Float64()

		opt := NewOptimizer(idx, WithClampToAchievable())
		res, err := opt.MinCost(CoverageTargets{Global: tau})
		if err != nil {
			t.Logf("MinCost: %v", err)
			return false
		}

		// Enumerate all subsets; find the cheapest meeting the clamped
		// targets.
		ids := idx.MonitorIDs()
		n := len(ids)
		best := -1.0
		for mask := 0; mask < 1<<n; mask++ {
			d := model.NewDeployment()
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					d.Add(ids[i])
				}
			}
			ok := true
			for _, aid := range idx.AttackIDs() {
				ev := idx.AttackEvidence(aid)
				achievable := float64(idx.ObservableEvidence(aid)) / float64(len(ev))
				want := tau
				if achievable < want {
					want = achievable
				}
				if metrics.AttackCoverage(idx, d, aid) < want-1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			c := metrics.Cost(idx, d)
			if best < 0 || c < best {
				best = c
			}
		}
		if best < 0 {
			t.Logf("seed %d: enumeration found no feasible subset but MinCost did", seed)
			return false
		}
		if res.Cost > best+1e-6 {
			t.Logf("seed %d: MinCost %v but enumeration found %v", seed, res.Cost, best)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
