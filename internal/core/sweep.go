package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// BudgetGrid returns n+1 evenly spaced budgets from 0 to the system's total
// monitor cost (inclusive); it is the x-axis of the utility-versus-budget
// experiments. n must be positive.
func BudgetGrid(idx *model.Index, n int) []float64 {
	if n <= 0 {
		return nil
	}
	total := idx.System().TotalMonitorCost()
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = total * float64(i) / float64(n)
	}
	return out
}

// SweepPoint is one budget level of a Pareto sweep.
type SweepPoint struct {
	Budget float64 `json:"budget"`
	// Optimal is the exact ILP result at this budget.
	Optimal *Result `json:"optimal"`
	// Greedy is the cost-benefit heuristic at this budget.
	Greedy *Result `json:"greedy"`
	// Random is the seeded random baseline at this budget.
	Random *Result `json:"random"`
}

// ParetoSweep computes the optimal and baseline deployments at each budget,
// tracing the utility-cost trade-off curve of the paper's evaluation. The
// seed drives the random baseline. Reported deployments are stabilized
// across budgets: once the curve saturates, every later point re-reports
// the first saturating deployment instead of an arbitrary equal-utility
// alternate optimum (see StabilizeSweep).
func (o *Optimizer) ParetoSweep(budgets []float64, seed int64) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(budgets))
	for _, b := range budgets {
		p, err := o.sweepPoint(b, seed)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	o.StabilizeSweep(points)
	return points, nil
}

// sweepStabilizeTol is the utility tolerance under which two budget points
// are considered to share an optimum. It sits far below any real utility
// increment (attack weights are unit-scale) and far above both
// floating-point summation noise and the solver's bound tolerance, so the
// stabilization decision is identical however the per-point optimum was
// obtained.
const sweepStabilizeTol = 1e-7

// StabilizeSweep canonicalizes the reported deployments of a sweep in
// place. The exact optimal utility is unique per budget, but the optimal
// deployment often is not — on degenerate instances the branch-and-bound
// trajectory, and even the budget RHS alone, picks different equal-utility
// monitor sets at neighboring saturated budgets. Walking the points in
// ascending budget order (stable for duplicates), whenever a proven point's
// corroborated utility does not exceed the previous proven point's, the
// previous deployment — still feasible, since budgets only grew — is
// re-reported and the point is marked Restated. The utility/cost curve is
// untouched in utility and improves (weakly) in cost; reported deployments
// become a function of the instance and budget grid alone, independent of
// solver trajectory. Every sweep path (cold, parallel, warm) runs this same
// pass, which is what lets the warm path's dominance skip stay bit-identical
// to the cold sweep; it is exported so the serve layer can re-run it after
// assembling a sweep from per-point cache hits plus freshly solved points.
// Idempotent: re-running over a superset of already-stabilized points
// yields the same reported sets as stabilizing raw points directly.
func (o *Optimizer) StabilizeSweep(points []SweepPoint) {
	if o.cfg.certify {
		// A certificate's recorded incumbent must stay the reported
		// deployment; certified sweeps keep their raw per-point sets.
		return
	}
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return points[order[a]].Budget < points[order[b]].Budget })

	k := o.corroborationLevel()
	var last *Result
	var lastObj float64
	for _, i := range order {
		cur := points[i].Optimal
		if cur == nil || !cur.Proven || cur.Fallback || cur.Deployment == nil {
			continue
		}
		obj := metrics.CorroboratedUtility(o.idx, cur.Deployment, k)
		if last != nil && obj <= lastObj+sweepStabilizeTol {
			if !cur.Deployment.Equal(last.Deployment) {
				cur.Deployment = last.Deployment.Clone()
				cur.Monitors = cur.Deployment.IDs()
				cur.Utility = last.Utility
				cur.Cost = last.Cost
				cur.Restated = true
			}
			obj = lastObj
		}
		last, lastObj = cur, obj
	}
}

// ParetoSweepParallel computes the same sweep as ParetoSweep using up to
// `workers` concurrent solves (GOMAXPROCS when workers <= 0). Budget points
// are independent and the optimizer's index is read-only, so the result is
// byte-for-byte identical to the sequential sweep, point order included.
func (o *Optimizer) ParetoSweepParallel(budgets []float64, seed int64, workers int) ([]SweepPoint, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(budgets) {
		workers = len(budgets)
	}
	if workers <= 1 {
		return o.ParetoSweep(budgets, seed)
	}

	points := make([]SweepPoint, len(budgets))
	errs := make([]error, len(budgets))
	next := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				points[i], errs[i] = o.sweepPoint(budgets[i], seed)
			}
		}()
	}
	for i := range budgets {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	o.StabilizeSweep(points)
	return points, nil
}

// sweepChain is the per-shard warm state threaded through a warm-shared
// sweep: the previous budget point's exact result and budget, a basis
// snapshot to warm-start the next bound LP from, and a reusable simplex
// workspace. Budgets within a shard are solved in ascending order, so each
// point's optimum stays feasible at the next (larger) budget and its basis
// is one RHS change away from the next root — exactly the situation the
// dual-simplex warm start built in PR 2 was made for.
type sweepChain struct {
	prev       *Result
	prevBudget float64
	basis      *lp.Basis
	ws         *lp.Workspace
}

// ParetoSweepWarm computes the same sweep as ParetoSweepParallel, sharing
// solver state between neighboring budget points: budgets are sorted
// ascending, split into contiguous per-worker shards, and within a shard
// every point is first priced by a warm-started LP relaxation carrying the
// previous point's basis snapshot. Optimal utility is nondecreasing in the
// budget and bounded by the (vertex-independent) relaxation objective, so
// whenever that bound collapses onto the previous incumbent's objective the
// previous deployment is proven optimal at the new budget and the entire
// branch-and-bound run is skipped — on typical sweeps the whole saturated
// upper half of the budget grid resolves this way. Points the bound test
// cannot close run the ordinary cold solve (sharing only the shard's
// simplex workspace, which is solver-invisible), so every reported point is
// bit-identical to the cold sweep — same objective, status and monitor set,
// enforced by the sweep-equivalence suite. WithoutSweepWarmStart,
// certification, decomposition-scale instances, and sub-two-point sweeps
// all fall back to the cold path.
func (o *Optimizer) ParetoSweepWarm(budgets []float64, seed int64, workers int) ([]SweepPoint, error) {
	if o.cfg.noSweepWarm || o.cfg.certify || o.shouldDecompose() || len(budgets) < 2 {
		return o.ParetoSweepParallel(budgets, seed, workers)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(budgets) {
		workers = len(budgets)
	}

	// Solve in ascending budget order (stable for duplicates) so every
	// chained incumbent remains feasible, but report in caller order.
	order := make([]int, len(budgets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return budgets[order[a]] < budgets[order[b]] })

	points := make([]SweepPoint, len(budgets))
	errs := make([]error, len(budgets))
	runShard := func(shard []int) {
		ch := &sweepChain{ws: lp.NewWorkspace()}
		for _, i := range shard {
			points[i], errs[i] = o.sweepPointWarm(budgets[i], seed, ch)
			if errs[i] != nil {
				return
			}
		}
	}

	if workers <= 1 {
		runShard(order)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			// Contiguous shards keep neighboring budgets on the same chain.
			lo := w * len(order) / workers
			hi := (w + 1) * len(order) / workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(shard []int) {
				defer wg.Done()
				runShard(shard)
			}(order[lo:hi])
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	o.StabilizeSweep(points)
	return points, nil
}

// sweepPointWarm solves one budget level with the exact solve chained
// through the shard's warm state; the greedy and random baselines are
// unaffected by warm starts.
func (o *Optimizer) sweepPointWarm(budget float64, seed int64, ch *sweepChain) (SweepPoint, error) {
	opt, err := o.maxUtilityChained(budget, ch)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: sweep at budget %v: %w", budget, err)
	}
	gr, err := Greedy(o.idx, budget)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: greedy at budget %v: %w", budget, err)
	}
	rnd, err := RandomDeployment(o.idx, budget, seed)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: random at budget %v: %w", budget, err)
	}
	return SweepPoint{Budget: budget, Optimal: opt, Greedy: gr, Random: rnd}, nil
}

// sweepBoundTol is the absolute slack allowed when testing whether the LP
// relaxation bound has collapsed onto the previous incumbent's objective. It
// sits an order of magnitude below the solver's own integrality gap, so a
// skip can only fire where the full solve would be forced to the same
// objective anyway.
const sweepBoundTol = 1e-9

// maxUtilityChained is the chained exact solve of a warm-shared sweep. With
// a proven previous point in hand it prices the new budget's LP relaxation
// (warm-started from the chain's basis snapshot); since budgets ascend, the
// previous deployment is still feasible, and when the relaxation bound does
// not exceed its objective the previous result is returned as the proven
// optimum without running branch-and-bound. Points the bound cannot close —
// and points following a fallback — run the normal solve with only the
// shard's solver-invisible workspace attached, so their trajectory is
// exactly the cold one.
func (o *Optimizer) maxUtilityChained(budget float64, ch *sweepChain) (*Result, error) {
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadBudget, budget)
	}
	if len(o.idx.MonitorIDs()) == 0 {
		res := o.emptyResult()
		res.Budget = budget
		return res, nil
	}

	if ch.prev != nil && budget == ch.prevBudget {
		// Exact duplicate budget: the solver is deterministic, so the cold
		// path would reproduce the previous point verbatim.
		res := *ch.prev
		return &res, nil
	}

	f, err := o.buildFormulation(formulationSpec{budget: budget, fixed: model.NewDeployment()})
	if err != nil {
		return nil, err
	}

	if ch.prev != nil {
		if res := o.trySweepSkip(f, budget, ch); res != nil {
			return res, nil
		}
	}

	res, sol, err := o.solveMaxUtilityFormulation(f, budget, model.NewDeployment(), ilp.WithWorkspace(ch.ws))
	if err != nil {
		return nil, err
	}
	if sol != nil && sol.RootBasis != nil {
		ch.basis = sol.RootBasis
	}
	if res.Proven && !res.Fallback {
		ch.prev, ch.prevBudget = res, budget
	} else {
		ch.prev = nil
	}
	return res, nil
}

// trySweepSkip prices the formulation's LP relaxation and, when the bound
// proves the chain's previous deployment still optimal at the larger
// budget, returns that deployment restated at the new budget; otherwise it
// returns nil and the caller runs the full solve. The relaxation objective
// is a valid upper bound on the integer optimum whatever vertex the simplex
// lands on, so the skip is exact even though the warm start perturbs the
// pivot path. The comparison objective is the corroborated utility — the
// ILP's actual objective — not the plain utility reported in Result.
func (o *Optimizer) trySweepSkip(f *formulation, budget float64, ch *sweepChain) *Result {
	lpOpts := []lp.Option{lp.WithWorkspace(ch.ws)}
	if ch.basis != nil {
		lpOpts = append(lpOpts, lp.WithWarmStart(ch.basis))
	}
	if o.cfg.kernel != lp.KernelAuto {
		lpOpts = append(lpOpts, lp.WithKernel(o.cfg.kernel))
	}
	if o.cfg.ctx != nil {
		lpOpts = append(lpOpts, lp.WithContext(o.cfg.ctx))
	}
	rsol, err := f.prob.SolveRelaxation(lpOpts...)
	if err != nil || rsol.Status != lp.StatusOptimal {
		return nil
	}
	if rsol.Basis != nil {
		ch.basis = rsol.Basis
	}
	prevObj := metrics.CorroboratedUtility(o.idx, ch.prev.Deployment, o.corroborationLevel())
	if rsol.Objective > prevObj+sweepBoundTol {
		return nil
	}
	res := *ch.prev
	res.Budget = budget
	res.RelaxationUtility = rsol.Objective
	if f.budgetRow >= 0 {
		res.BudgetShadowPrice = rsol.Dual(f.budgetRow)
	}
	res.Stats = SolveStats{LPIterations: rsol.Iterations}
	// The deployment was inherited, not solved for at this budget; mark it
	// so per-budget-point caches never store a carried-over set.
	res.Restated = true
	ch.prev, ch.prevBudget = &res, budget
	return &res
}

// sweepPoint solves one budget level with all three strategies.
func (o *Optimizer) sweepPoint(budget float64, seed int64) (SweepPoint, error) {
	opt, err := o.MaxUtility(budget)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: sweep at budget %v: %w", budget, err)
	}
	gr, err := Greedy(o.idx, budget)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: greedy at budget %v: %w", budget, err)
	}
	rnd, err := RandomDeployment(o.idx, budget, seed)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: random at budget %v: %w", budget, err)
	}
	return SweepPoint{Budget: budget, Optimal: opt, Greedy: gr, Random: rnd}, nil
}
