package core

import (
	"fmt"
	"runtime"
	"sync"

	"secmon/internal/model"
)

// BudgetGrid returns n+1 evenly spaced budgets from 0 to the system's total
// monitor cost (inclusive); it is the x-axis of the utility-versus-budget
// experiments. n must be positive.
func BudgetGrid(idx *model.Index, n int) []float64 {
	if n <= 0 {
		return nil
	}
	total := idx.System().TotalMonitorCost()
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = total * float64(i) / float64(n)
	}
	return out
}

// SweepPoint is one budget level of a Pareto sweep.
type SweepPoint struct {
	Budget float64 `json:"budget"`
	// Optimal is the exact ILP result at this budget.
	Optimal *Result `json:"optimal"`
	// Greedy is the cost-benefit heuristic at this budget.
	Greedy *Result `json:"greedy"`
	// Random is the seeded random baseline at this budget.
	Random *Result `json:"random"`
}

// ParetoSweep computes the optimal and baseline deployments at each budget,
// tracing the utility-cost trade-off curve of the paper's evaluation. The
// seed drives the random baseline.
func (o *Optimizer) ParetoSweep(budgets []float64, seed int64) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(budgets))
	for _, b := range budgets {
		p, err := o.sweepPoint(b, seed)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// ParetoSweepParallel computes the same sweep as ParetoSweep using up to
// `workers` concurrent solves (GOMAXPROCS when workers <= 0). Budget points
// are independent and the optimizer's index is read-only, so the result is
// byte-for-byte identical to the sequential sweep, point order included.
func (o *Optimizer) ParetoSweepParallel(budgets []float64, seed int64, workers int) ([]SweepPoint, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(budgets) {
		workers = len(budgets)
	}
	if workers <= 1 {
		return o.ParetoSweep(budgets, seed)
	}

	points := make([]SweepPoint, len(budgets))
	errs := make([]error, len(budgets))
	next := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				points[i], errs[i] = o.sweepPoint(budgets[i], seed)
			}
		}()
	}
	for i := range budgets {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// sweepPoint solves one budget level with all three strategies.
func (o *Optimizer) sweepPoint(budget float64, seed int64) (SweepPoint, error) {
	opt, err := o.MaxUtility(budget)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: sweep at budget %v: %w", budget, err)
	}
	gr, err := Greedy(o.idx, budget)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: greedy at budget %v: %w", budget, err)
	}
	rnd, err := RandomDeployment(o.idx, budget, seed)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("core: random at budget %v: %w", budget, err)
	}
	return SweepPoint{Budget: budget, Optimal: opt, Greedy: gr, Random: rnd}, nil
}
