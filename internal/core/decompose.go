package core

import (
	"errors"
	"fmt"
	"runtime"

	"secmon/internal/decomp"
	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// DecompositionThreshold is the monitor count at which exact solves switch to
// the graph-partitioned decomposition solver automatically. Below it the
// monolithic branch-and-bound is consistently fast; above it the decomposed
// coordinator wins by orders of magnitude on segmentable systems. Override
// per-optimizer with WithDecomposition / WithoutDecomposition.
const DecompositionThreshold = 1500

// shouldDecompose reports whether the next exact solve should try the
// decomposition solver. Only the plain compact formulation decomposes:
// the expanded encoding, corroboration, certification and the dense oracle
// kernel pin the monolithic path.
func (o *Optimizer) shouldDecompose() bool {
	if o.cfg.decompose < 0 {
		return false
	}
	if o.cfg.expanded || o.cfg.certify || o.corroborationLevel() > 1 || o.cfg.kernel == lp.KernelDense {
		return false
	}
	if o.cfg.decompose > 0 {
		return true
	}
	return len(o.idx.MonitorIDs()) >= DecompositionThreshold
}

func (o *Optimizer) decompConfig() decomp.Config {
	return decomp.Config{Workers: o.cfg.workers, Ctx: o.cfg.ctx}
}

// maxUtilityDecomposed runs the budgeted solve through the decomposition
// coordinator. A nil, nil return means the instance did not decompose and the
// caller should fall through to the monolithic path.
func (o *Optimizer) maxUtilityDecomposed(budget float64, fixed *model.Deployment) (*Result, error) {
	dres, err := decomp.MaxUtility(o.idx, budget, fixed, o.decompConfig())
	if errors.Is(err, decomp.ErrNotDecomposable) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: decomposed max-utility: %w", err)
	}
	d := model.NewDeployment()
	for _, id := range dres.Monitors {
		d.Add(id)
	}
	if !o.cfg.noPrune {
		o.pruneRedundant(d, fixed)
		o.canonicalizeTies(d, fixed)
	}
	res := o.newDecompResult(d, dres)
	res.Budget = budget
	res.BudgetShadowPrice = dres.ShadowPrice
	return res, nil
}

// minCostDecomposed runs the coverage-target solve through the exact
// component decomposition. A nil, nil return means the instance did not
// decompose (or a segment stopped with no incumbent) and the caller should
// fall through to the monolithic path.
func (o *Optimizer) minCostDecomposed(targets CoverageTargets, fixed *model.Deployment) (*Result, error) {
	required := make(map[model.AttackID]float64)
	for _, aid := range o.idx.AttackIDs() {
		r, err := o.requiredEvidence(aid, &targets)
		if err != nil {
			return nil, err
		}
		if r > 0 {
			required[aid] = r
		}
	}
	dres, err := decomp.MinCost(o.idx, required, fixed, o.decompConfig())
	if errors.Is(err, decomp.ErrNotDecomposable) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: decomposed min-cost: %w", err)
	}
	switch dres.Status {
	case ilp.StatusOptimal, ilp.StatusFeasible:
	case ilp.StatusInfeasible:
		return nil, ErrInfeasible
	default:
		// A segment stopped with no incumbent: let the monolithic path run
		// and apply its fallback contract.
		return nil, nil
	}
	d := model.NewDeployment()
	for _, id := range dres.Monitors {
		d.Add(id)
	}
	return o.newDecompResult(d, dres), nil
}

// newDecompResult maps a decomposition outcome onto the Result contract.
func (o *Optimizer) newDecompResult(d *model.Deployment, dres *decomp.Result) *Result {
	workers := o.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats := dres.Stats
	return &Result{
		Deployment:  d,
		Monitors:    d.IDs(),
		Utility:     metrics.Utility(o.idx, d),
		Cost:        metrics.Cost(o.idx, d),
		Proven:      dres.Status == ilp.StatusOptimal,
		Status:      dres.Status.String(),
		BestBound:   dres.BestBound,
		BoundKnown:  dres.BoundKnown,
		Gap:         dres.Gap,
		Interrupted: dres.Interrupted,
		Stats: SolveStats{
			Nodes:         dres.Nodes,
			LPIterations:  dres.LPIterations,
			Elapsed:       dres.Elapsed,
			Workers:       workers,
			Decomposition: &stats,
		},
	}
}
