package core

// Warm-started incremental re-solves.
//
// A stateful caller (internal/state) holds a live system that mutates in
// small steps: a monitor is added, a cost drifts, the budget moves. Solving
// every step from scratch discards everything the previous solve proved.
// The Prior type captures the reusable part of a proven solve — the result
// itself, the final root basis snapshot, the formulation it was captured on
// and a simplex workspace — and the warm entry points MaxUtilityWarm /
// MinCostWarm thread it through the next solve:
//
//  1. Bound shortcut ("lp-bound"): the previous deployment, repaired for
//     monitors the mutation removed, is re-priced against the mutated
//     instance's LP relaxation (warm-started from the prior basis, remapped
//     across column add/drop by stable monitor names). When the relaxation
//     bound collapses onto the repaired deployment's exact objective, that
//     deployment is proven optimal for the new instance and branch-and-bound
//     never runs — the incremental analog of the warm Pareto sweep's
//     saturated-point skip.
//  2. Warm full solve: otherwise the ordinary exact solve runs, seeded with
//     the repaired previous deployment as the incumbent (ilp.WithIncumbent)
//     and the remapped basis as the root warm start (ilp.WithRootBasis).
//     Both are performance hints validated inside the solver; they never
//     change the proven optimum, so results are bit-identical to a cold
//     solve of the same instance up to the tie canonicalization the cold
//     path itself applies.
//
// Certified optimizers skip all reuse: a certificate's incumbent must be
// discovered by the audited search itself, so the warm entry points reduce
// to the plain cold solves and return a Prior carrying only the result.

import (
	"fmt"
	"math"
	"sort"

	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// Prior carries the reusable state of a previous proven solve into the next
// warm solve of a slightly mutated instance. The zero value (or nil) means
// "no prior": the warm entry points then behave exactly like the cold ones
// while still capturing a Prior for the solve after. Priors are not safe for
// concurrent use; they are meant to be owned by one re-solve loop.
type Prior struct {
	// Result is the previous solve's outcome; only proven, non-fallback
	// results are reused.
	Result *Result
	// minCost records which formulation the prior belongs to; a prior is
	// never reused across modes.
	minCost bool
	basis   *lp.Basis
	prob    *ilp.Problem // formulation the basis was captured on
	ws      *lp.Workspace
}

// Workspace returns the prior's simplex workspace, allocating it on first
// use, so chained solves keep their factorization buffers warm.
func (p *Prior) Workspace() *lp.Workspace {
	if p == nil {
		return lp.NewWorkspace()
	}
	if p.ws == nil {
		p.ws = lp.NewWorkspace()
	}
	return p.ws
}

// usable reports whether the prior carries a proven result for the given
// mode that the next solve may reuse.
func (p *Prior) usable(minCost bool) bool {
	return p != nil && p.Result != nil && p.Result.Proven && !p.Result.Fallback &&
		p.Result.Deployment != nil && p.minCost == minCost
}

// MaxUtilityWarm computes the same proven result as MaxUtility(budget) while
// reusing the prior solve's basis, incumbent and workspace (see the package
// comment above). It returns the result together with the Prior to thread
// into the next solve. prior may be nil.
func (o *Optimizer) MaxUtilityWarm(budget float64, prior *Prior) (*Result, *Prior, error) {
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadBudget, budget)
	}
	if len(o.idx.MonitorIDs()) == 0 {
		res := o.emptyResult()
		res.Budget = budget
		return res, &Prior{Result: res}, nil
	}
	if o.cfg.certify || o.shouldDecompose() {
		// No reuse: certified searches must discover their own incumbent,
		// and the decomposition coordinator has no single root basis.
		res, err := o.MaxUtility(budget)
		if err != nil {
			return nil, nil, err
		}
		return res, &Prior{Result: res}, nil
	}

	f, err := o.buildFormulation(formulationSpec{budget: budget, fixed: model.NewDeployment()})
	if err != nil {
		return nil, nil, err
	}
	next := &Prior{ws: prior.Workspace()}
	if prior == nil {
		next.ws = lp.NewWorkspace()
	}

	var rootBasis *lp.Basis
	if prior.usable(false) {
		if prior.basis != nil && prior.prob != nil {
			rootBasis = ilp.RemapRootBasis(prior.basis, prior.prob, f.prob)
		}
		candidate := o.repairSet(prior.Result.Deployment)
		pristine := candidate.Len() == prior.Result.Deployment.Len()
		if metrics.Cost(o.idx, candidate) <= budget {
			if res := o.tryBoundSkip(f, budget, candidate, rootBasis, next, pristine); res != nil {
				next.Result, next.prob = res, f.prob
				if next.basis == nil {
					next.basis = rootBasis
				}
				return res, next, nil
			}
		}
	}

	extras := []ilp.Option{ilp.WithWorkspace(next.ws)}
	warm := false
	if prior.usable(false) {
		if seed := o.seedVector(f, o.repairToBudget(prior.Result.Deployment, budget)); seed != nil {
			extras = append(extras, ilp.WithIncumbent(seed))
			warm = true
		}
	}
	if rootBasis != nil {
		extras = append(extras, ilp.WithRootBasis(rootBasis))
		warm = true
	}

	res, sol, err := o.solveMaxUtilityFormulation(f, budget, model.NewDeployment(), extras...)
	if err != nil {
		return nil, nil, err
	}
	res.Stats.WarmStarted = warm
	next.prob = f.prob
	if sol != nil && sol.RootBasis != nil {
		next.basis = sol.RootBasis
	}
	if res.Proven && !res.Fallback {
		next.Result = res
	}
	return res, next, nil
}

// MinCostWarm computes the same proven result as MinCost(targets) while
// reusing the prior solve's basis, incumbent and workspace; the MinCost
// counterpart of MaxUtilityWarm.
func (o *Optimizer) MinCostWarm(targets CoverageTargets, prior *Prior) (*Result, *Prior, error) {
	if err := o.validateTargets(targets); err != nil {
		return nil, nil, err
	}
	if len(o.idx.MonitorIDs()) == 0 || o.cfg.certify || o.shouldDecompose() {
		res, err := o.MinCost(targets)
		if err != nil {
			return nil, nil, err
		}
		return res, &Prior{Result: res, minCost: true}, nil
	}

	f, err := o.buildFormulation(formulationSpec{minCost: true, targets: &targets, fixed: model.NewDeployment()})
	if err != nil {
		return nil, nil, err
	}
	next := &Prior{minCost: true, ws: prior.Workspace()}
	if prior == nil {
		next.ws = lp.NewWorkspace()
	}

	var rootBasis *lp.Basis
	if prior.usable(true) {
		if prior.basis != nil && prior.prob != nil {
			rootBasis = ilp.RemapRootBasis(prior.basis, prior.prob, f.prob)
		}
		candidate := o.repairSet(prior.Result.Deployment)
		if ok, err := o.MeetsTargets(targets, candidate); err == nil && ok {
			if res := o.tryCostBoundSkip(f, candidate, rootBasis, next); res != nil {
				next.Result, next.prob = res, f.prob
				if next.basis == nil {
					next.basis = rootBasis
				}
				return res, next, nil
			}
		}
	}

	extras := []ilp.Option{ilp.WithWorkspace(next.ws)}
	warm := false
	if prior.usable(true) {
		if seed := o.seedVector(f, o.repairSet(prior.Result.Deployment)); seed != nil {
			extras = append(extras, ilp.WithIncumbent(seed))
			warm = true
		}
	}
	if rootBasis != nil {
		extras = append(extras, ilp.WithRootBasis(rootBasis))
		warm = true
	}

	res, sol, err := o.solveMinCostFormulation(f, extras...)
	if err != nil {
		return nil, nil, err
	}
	res.Stats.WarmStarted = warm
	next.prob = f.prob
	if sol != nil && sol.RootBasis != nil {
		next.basis = sol.RootBasis
	}
	if res.Proven && !res.Fallback {
		next.Result = res
	}
	return res, next, nil
}

// tryBoundSkip prices the MaxUtility formulation's LP relaxation
// (warm-started from the remapped prior basis) and, when the bound collapses
// onto the repaired previous deployment's exact objective, returns that
// deployment — canonicalized the same way the full solve's post-passes would
// — as the proven optimum. nil means the bound could not close and the full
// solve must run. The relaxation objective is a valid upper bound whatever
// vertex the warm start lands on, so the skip is exact (see trySweepSkip).
//
// pristine marks a candidate that IS the previous optimum, untouched by
// repair. That set already went through pruneRedundant and canonicalizeTies
// when it was produced, so the passes — which dominate the skip's cost on
// large instances, each being a full objective sweep per member — are
// elided. Re-running them under mutated costs could at most exchange one
// member of the proven exact tie for another.
func (o *Optimizer) tryBoundSkip(f *formulation, budget float64, candidate *model.Deployment, basis *lp.Basis, next *Prior, pristine bool) *Result {
	rsol := o.priceRelaxation(f, basis, next)
	if rsol == nil {
		return nil
	}
	// Same proof standard as the branch-and-bound's own pruning rule:
	// a node whose bound is within gapTolerance*max(1,|incumbent|) of the
	// incumbent is fathomed, so a root bound that close proves optimality.
	prevObj := metrics.CorroboratedUtility(o.idx, candidate, o.corroborationLevel())
	if rsol.Objective > prevObj+sweepBoundTol*math.Max(1, math.Abs(prevObj)) {
		return nil
	}
	d := candidate.Clone()
	if !o.cfg.noPrune && !pristine {
		empty := model.NewDeployment()
		o.pruneRedundant(d, empty)
		o.canonicalizeTies(d, empty)
	}
	res := &Result{
		Deployment:        d,
		Monitors:          d.IDs(),
		Utility:           metrics.Utility(o.idx, d),
		Cost:              metrics.Cost(o.idx, d),
		Budget:            budget,
		Proven:            true,
		Status:            ilp.StatusOptimal.String(),
		BestBound:         prevObj,
		BoundKnown:        true,
		RelaxationUtility: rsol.Objective,
		Restated:          true,
		Stats: SolveStats{
			LPIterations: rsol.Iterations,
			WarmStarted:  true,
			Shortcut:     "lp-bound",
		},
	}
	if f.budgetRow >= 0 {
		res.BudgetShadowPrice = rsol.Dual(f.budgetRow)
	}
	return res
}

// tryCostBoundSkip is the MinCost counterpart of tryBoundSkip: when the LP
// relaxation's cost lower bound reaches the repaired previous deployment's
// exact cost, that deployment is proven optimal without branch-and-bound.
// The candidate must already be verified feasible against the targets.
func (o *Optimizer) tryCostBoundSkip(f *formulation, candidate *model.Deployment, basis *lp.Basis, next *Prior) *Result {
	rsol := o.priceRelaxation(f, basis, next)
	if rsol == nil {
		return nil
	}
	cost := metrics.Cost(o.idx, candidate)
	if rsol.Objective < cost-sweepBoundTol*math.Max(1, math.Abs(cost)) {
		return nil
	}
	d := candidate.Clone()
	res := &Result{
		Deployment: d,
		Monitors:   d.IDs(),
		Utility:    metrics.Utility(o.idx, d),
		Cost:       cost,
		Proven:     true,
		Status:     ilp.StatusOptimal.String(),
		BestBound:  cost,
		BoundKnown: true,
		Restated:   true,
		Stats: SolveStats{
			LPIterations: rsol.Iterations,
			WarmStarted:  true,
			Shortcut:     "lp-bound",
		},
	}
	return res
}

// priceRelaxation solves the formulation's LP relaxation warm-started from
// basis inside the prior's workspace, capturing the resulting basis into
// next. nil means the relaxation did not come back optimal (numerical
// trouble, interruption) and the caller should run the full solve.
func (o *Optimizer) priceRelaxation(f *formulation, basis *lp.Basis, next *Prior) *lp.Solution {
	// WithWarmStart(nil) still enables basis capture, so a chain that lost
	// its snapshot (first solve, failed remap) regains one here.
	lpOpts := []lp.Option{lp.WithWorkspace(next.ws), lp.WithWarmStart(basis)}
	if o.cfg.kernel != lp.KernelAuto {
		lpOpts = append(lpOpts, lp.WithKernel(o.cfg.kernel))
	}
	if o.cfg.ctx != nil {
		lpOpts = append(lpOpts, lp.WithContext(o.cfg.ctx))
	}
	rsol, err := f.prob.SolveRelaxation(lpOpts...)
	if err != nil || rsol.Status != lp.StatusOptimal {
		return nil
	}
	if rsol.Basis != nil {
		next.basis = rsol.Basis
	}
	return rsol
}

// repairSet drops monitors the current system no longer defines, the repair
// applied to a previous deployment before reuse.
func (o *Optimizer) repairSet(d *model.Deployment) *model.Deployment {
	out := model.NewDeployment()
	for _, id := range d.IDs() {
		if _, ok := o.idx.Monitor(id); ok {
			out.Add(id)
		}
	}
	return out
}

// repairToBudget additionally strips the repaired set down to the budget,
// removing the most expensive monitors first (ties by identifier, for
// determinism), so the remainder is a feasible MaxUtility incumbent seed.
func (o *Optimizer) repairToBudget(d *model.Deployment, budget float64) *model.Deployment {
	out := o.repairSet(d)
	cost := metrics.Cost(o.idx, out)
	if cost <= budget {
		return out
	}
	ids := out.IDs()
	sort.SliceStable(ids, func(a, b int) bool {
		ma, _ := o.idx.Monitor(ids[a])
		mb, _ := o.idx.Monitor(ids[b])
		if ma.TotalCost() != mb.TotalCost() {
			return ma.TotalCost() > mb.TotalCost()
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		if cost <= budget {
			break
		}
		m, _ := o.idx.Monitor(id)
		out.Remove(id)
		cost -= m.TotalCost()
	}
	return out
}

// seedVector builds the WithIncumbent vector for deploying exactly the given
// monitor set: selection variables from the set, coverage variables at the
// value the deployment's corroborated coverage implies. The solver validates
// the vector against every row and silently ignores infeasible seeds, so a
// repair that turned out inadequate costs nothing. nil when the set is empty
// (an all-zero seed prunes nothing).
func (o *Optimizer) seedVector(f *formulation, set *model.Deployment) []float64 {
	if set == nil || set.Len() == 0 {
		return nil
	}
	k := o.corroborationLevel()
	covered := func(d model.DataTypeID) bool {
		n := 0
		for _, mid := range o.idx.Producers(d) {
			if set.Contains(mid) {
				n++
			}
		}
		return n >= k
	}
	x := make([]float64, f.prob.NumVariables())
	for i, id := range f.monitors {
		if set.Contains(id) {
			x[f.xVars[i]] = 1
		}
	}
	for v := 0; v < len(x); v++ {
		name := f.prob.VariableName(lp.VarID(v))
		switch {
		case len(name) > 2 && name[:2] == "z:":
			if covered(model.DataTypeID(name[2:])) {
				x[v] = 1
			}
		case len(name) > 2 && name[:2] == "y:":
			// Expanded encoding: y:<attack>:<data-type>.
			rest := name[2:]
			for i := len(rest) - 1; i > 0; i-- {
				if rest[i] == ':' {
					if covered(model.DataTypeID(rest[i+1:])) {
						x[v] = 1
					}
					break
				}
			}
		}
	}
	return x
}

// Objective returns the exact ILP objective the optimizer maximizes for a
// deployment: the corroborated utility at the configured corroboration
// level. Sensitivity shortcuts in the state layer compare candidate
// deployments through this single definition.
func (o *Optimizer) Objective(d *model.Deployment) float64 {
	return metrics.CorroboratedUtility(o.idx, d, o.corroborationLevel())
}

// Cost returns the total deployment cost of d under the optimizer's system.
func (o *Optimizer) Cost(d *model.Deployment) float64 {
	return metrics.Cost(o.idx, d)
}

// Utility returns the plain (corroboration-free) utility of d, the value
// Result.Utility reports.
func (o *Optimizer) Utility(d *model.Deployment) float64 {
	return metrics.Utility(o.idx, d)
}

// Canonicalize rewrites d in place into the canonical representative the
// exact solve's post-passes would report: when prune is set, redundant
// monitors are removed first (the MaxUtility minimality pass); equal-cost
// equal-objective ties are then collapsed onto the lexicographically
// smallest set. A no-op for optimizers built WithoutPruning, mirroring the
// solve paths.
func (o *Optimizer) Canonicalize(d *model.Deployment, prune bool) {
	if o.cfg.noPrune {
		return
	}
	empty := model.NewDeployment()
	if prune {
		o.pruneRedundant(d, empty)
	}
	o.canonicalizeTies(d, empty)
}

// MeetsTargets reports whether the deployment satisfies the MinCost coverage
// targets at the optimizer's corroboration level. The error mirrors MinCost:
// targets no deployment can meet yield ErrInfeasible unless the optimizer
// clamps to achievable coverage.
func (o *Optimizer) MeetsTargets(targets CoverageTargets, d *model.Deployment) (bool, error) {
	if err := o.validateTargets(targets); err != nil {
		return false, err
	}
	k := o.corroborationLevel()
	for _, aid := range o.idx.AttackIDs() {
		required, err := o.requiredEvidence(aid, &targets)
		if err != nil {
			return false, err
		}
		if required <= 0 {
			continue
		}
		covered := 0
		for _, e := range o.idx.AttackEvidence(aid) {
			n := 0
			for _, mid := range o.idx.Producers(e) {
				if d.Contains(mid) {
					n++
				}
			}
			if n >= k {
				covered++
			}
		}
		if float64(covered) < required {
			return false, nil
		}
	}
	return true, nil
}
