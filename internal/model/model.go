// Package model defines the system model of Thakore, Weaver and Sanders
// (DSN 2016): the assets that make up a system, the monitors that can be
// deployed on those assets, the data that monitors generate, and the
// relationship between generated data and intrusions.
//
// The central relation is evidence: every attack consists of steps, every
// step manifests in one or more data types, and every monitor produces a set
// of data types. A deployed monitor therefore covers the attack steps whose
// evidence it produces; the metrics and optimization packages quantify and
// optimize that coverage.
package model

import (
	"fmt"
	"sort"
)

// AssetID identifies an asset within a System.
type AssetID string

// MonitorID identifies a deployable monitor within a System.
type MonitorID string

// DataTypeID identifies a class of observable data within a System.
type DataTypeID string

// AttackID identifies an attack (intrusion) within a System.
type AttackID string

// Asset is a component of the modeled system: a host, service, network
// segment or similar location where monitors can be deployed and data is
// generated.
type Asset struct {
	ID   AssetID `json:"id"`
	Name string  `json:"name"`
	// Kind is a free-form classification such as "host", "network" or
	// "service".
	Kind string `json:"kind,omitempty"`
	// Criticality is the asset's relative importance; it defaults to 1 and
	// scales the weight of attacks targeting the asset in reports.
	Criticality float64 `json:"criticality,omitempty"`
}

// DataType is a class of observable data (an event type with fields), such
// as "web access log entry" or "netflow record". Data types are the currency
// of the evidence relation between monitors and attacks.
type DataType struct {
	ID   DataTypeID `json:"id"`
	Name string     `json:"name"`
	// Asset is the asset on which this data is observable; empty when the
	// data is not tied to a single asset.
	Asset AssetID `json:"asset,omitempty"`
	// Fields lists the fields carried by events of this type, used by the
	// richness metric.
	Fields []string `json:"fields,omitempty"`
}

// Monitor is a deployable sensor: deploying it incurs a cost and makes a set
// of data types observable.
type Monitor struct {
	ID   MonitorID `json:"id"`
	Name string    `json:"name"`
	// Asset is the asset on which the monitor is deployed.
	Asset AssetID `json:"asset,omitempty"`
	// Produces lists the data types this monitor generates when deployed.
	Produces []DataTypeID `json:"produces"`
	// CapitalCost is the one-time cost of deploying the monitor.
	CapitalCost float64 `json:"capitalCost"`
	// OperationalCost is the recurring cost (per planning period) of
	// keeping the monitor running: processing, storage, maintenance.
	OperationalCost float64 `json:"operationalCost"`
}

// TotalCost is the cost used by the deployment optimization: capital plus
// one planning period of operation.
func (m Monitor) TotalCost() float64 {
	return m.CapitalCost + m.OperationalCost
}

// AttackStep is one stage of an attack together with the data types in which
// it manifests (its evidence).
type AttackStep struct {
	Name string `json:"name"`
	// Evidence lists the data types that would record this step. Covering
	// any evidence item makes the step observable; covering more increases
	// redundancy.
	Evidence []DataTypeID `json:"evidence"`
}

// Attack is a weighted intrusion scenario consisting of ordered steps.
type Attack struct {
	ID   AttackID `json:"id"`
	Name string   `json:"name"`
	// Weight is the attack's relative importance (likelihood x impact);
	// it defaults to 1.
	Weight float64      `json:"weight,omitempty"`
	Steps  []AttackStep `json:"steps"`
}

// EvidenceUnion returns the deduplicated, sorted union of evidence across
// all steps of the attack.
func (a Attack) EvidenceUnion() []DataTypeID {
	seen := make(map[DataTypeID]bool)
	var out []DataTypeID
	for _, step := range a.Steps {
		for _, e := range step.Evidence {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// System is the complete model: assets, observable data types, deployable
// monitors and the attacks to defend against.
type System struct {
	Name      string     `json:"name"`
	Assets    []Asset    `json:"assets"`
	DataTypes []DataType `json:"dataTypes"`
	Monitors  []Monitor  `json:"monitors"`
	Attacks   []Attack   `json:"attacks"`
}

// TotalMonitorCost is the cost of deploying every monitor in the system; it
// is the natural upper end of budget sweeps.
func (s *System) TotalMonitorCost() float64 {
	sum := 0.0
	for _, m := range s.Monitors {
		sum += m.TotalCost()
	}
	return sum
}

// TotalAttackWeight is the sum of attack weights (with the default of 1
// applied); utility is normalized against it.
func (s *System) TotalAttackWeight() float64 {
	sum := 0.0
	for _, a := range s.Attacks {
		sum += attackWeight(a)
	}
	return sum
}

// attackWeight applies the default weight of 1.
func attackWeight(a Attack) float64 {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// AttackWeight returns the effective weight of an attack, applying the
// default of 1 when the weight is unset.
func AttackWeight(a Attack) float64 { return attackWeight(a) }

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	cp := &System{
		Name:      s.Name,
		Assets:    make([]Asset, len(s.Assets)),
		DataTypes: make([]DataType, len(s.DataTypes)),
		Monitors:  make([]Monitor, len(s.Monitors)),
		Attacks:   make([]Attack, len(s.Attacks)),
	}
	copy(cp.Assets, s.Assets)
	for i, d := range s.DataTypes {
		d.Fields = append([]string(nil), d.Fields...)
		cp.DataTypes[i] = d
	}
	for i, m := range s.Monitors {
		m.Produces = append([]DataTypeID(nil), m.Produces...)
		cp.Monitors[i] = m
	}
	for i, a := range s.Attacks {
		steps := make([]AttackStep, len(a.Steps))
		for j, st := range a.Steps {
			st.Evidence = append([]DataTypeID(nil), st.Evidence...)
			steps[j] = st
		}
		a.Steps = steps
		cp.Attacks[i] = a
	}
	return cp
}

// String summarizes the system size.
func (s *System) String() string {
	return fmt.Sprintf("%s: %d assets, %d data types, %d monitors, %d attacks",
		s.Name, len(s.Assets), len(s.DataTypes), len(s.Monitors), len(s.Attacks))
}
