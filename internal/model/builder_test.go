package model

import (
	"errors"
	"testing"
)

func TestBuilderBuildsValidSystem(t *testing.T) {
	sys, err := NewBuilder("built").
		Asset("web", "Web server", "host").
		CriticalAsset("db", "Database", "host", 3).
		DataType("http-log", "HTTP access log", "web", "src", "url").
		DataType("sql-audit", "SQL audit", "db", "user", "query").
		Monitor("m-http", "Web log collector", "web", 10, 5, "http-log").
		Monitor("m-db", "DB audit", "db", 20, 10, "sql-audit").
		Attack("sqli", "SQL injection", 2).
		Step("probe", "http-log").
		Step("inject", "http-log", "sql-audit").
		Done().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sys.Name != "built" {
		t.Errorf("Name = %q", sys.Name)
	}
	if len(sys.Assets) != 2 || len(sys.DataTypes) != 2 || len(sys.Monitors) != 2 || len(sys.Attacks) != 1 {
		t.Errorf("sizes = %v", sys.String())
	}
	if sys.Assets[1].Criticality != 3 {
		t.Errorf("criticality = %v, want 3", sys.Assets[1].Criticality)
	}
	if len(sys.Attacks[0].Steps) != 2 {
		t.Errorf("steps = %d, want 2", len(sys.Attacks[0].Steps))
	}
}

func TestBuilderBuildValidates(t *testing.T) {
	_, err := NewBuilder("broken").
		Asset("web", "Web server", "host").
		DataType("http-log", "HTTP access log", "web").
		Monitor("m", "Monitor", "web", 1, 1, "missing-data").
		Build()
	if !errors.Is(err, ErrInvalidSystem) {
		t.Errorf("error = %v, want ErrInvalidSystem", err)
	}
}

func TestBuilderResultIsIndependent(t *testing.T) {
	b := NewBuilder("sys").
		Asset("a", "Asset", "host").
		DataType("d", "Data", "a").
		Monitor("m", "Monitor", "a", 1, 1, "d").
		Attack("x", "Attack", 1).Step("s", "d").Done()
	sys1, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sys1.Monitors[0].Produces[0] = "tampered"
	sys2, err := b.Build()
	if err != nil {
		t.Fatalf("second Build: %v", err)
	}
	if sys2.Monitors[0].Produces[0] != "d" {
		t.Error("Build results share storage")
	}
}
