package model

import (
	"fmt"
	"sort"
)

// Index is a validated, query-optimized view of a System. It resolves
// identifiers to entities and precomputes the producer relation between data
// types and monitors that the metrics and optimization packages traverse.
// An Index is immutable after construction and safe for concurrent reads.
type Index struct {
	sys *System

	assets    map[AssetID]*Asset
	dataTypes map[DataTypeID]*DataType
	monitors  map[MonitorID]*Monitor
	attacks   map[AttackID]*Attack

	// producers maps each data type to the sorted monitors that produce it.
	producers map[DataTypeID][]MonitorID
	// produces maps each monitor to its set of data types.
	produces map[MonitorID]map[DataTypeID]bool
	// attackEvidence caches EvidenceUnion per attack.
	attackEvidence map[AttackID][]DataTypeID
}

// NewIndex validates the system and builds an index over it. The index keeps
// a reference to the system; callers must not mutate the system afterwards
// (use System.Clone first when mutation is needed).
func NewIndex(s *System) (*Index, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	idx := &Index{
		sys:            s,
		assets:         make(map[AssetID]*Asset, len(s.Assets)),
		dataTypes:      make(map[DataTypeID]*DataType, len(s.DataTypes)),
		monitors:       make(map[MonitorID]*Monitor, len(s.Monitors)),
		attacks:        make(map[AttackID]*Attack, len(s.Attacks)),
		producers:      make(map[DataTypeID][]MonitorID, len(s.DataTypes)),
		produces:       make(map[MonitorID]map[DataTypeID]bool, len(s.Monitors)),
		attackEvidence: make(map[AttackID][]DataTypeID, len(s.Attacks)),
	}
	for i := range s.Assets {
		idx.assets[s.Assets[i].ID] = &s.Assets[i]
	}
	for i := range s.DataTypes {
		idx.dataTypes[s.DataTypes[i].ID] = &s.DataTypes[i]
	}
	for i := range s.Monitors {
		m := &s.Monitors[i]
		idx.monitors[m.ID] = m
		set := make(map[DataTypeID]bool, len(m.Produces))
		for _, d := range m.Produces {
			set[d] = true
			idx.producers[d] = append(idx.producers[d], m.ID)
		}
		idx.produces[m.ID] = set
	}
	for d := range idx.producers {
		list := idx.producers[d]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	for i := range s.Attacks {
		a := &s.Attacks[i]
		idx.attacks[a.ID] = a
		idx.attackEvidence[a.ID] = a.EvidenceUnion()
	}
	return idx, nil
}

// System returns the indexed system.
func (idx *Index) System() *System { return idx.sys }

// Asset resolves an asset identifier.
func (idx *Index) Asset(id AssetID) (*Asset, bool) {
	a, ok := idx.assets[id]
	return a, ok
}

// DataType resolves a data type identifier.
func (idx *Index) DataType(id DataTypeID) (*DataType, bool) {
	d, ok := idx.dataTypes[id]
	return d, ok
}

// Monitor resolves a monitor identifier.
func (idx *Index) Monitor(id MonitorID) (*Monitor, bool) {
	m, ok := idx.monitors[id]
	return m, ok
}

// Attack resolves an attack identifier.
func (idx *Index) Attack(id AttackID) (*Attack, bool) {
	a, ok := idx.attacks[id]
	return a, ok
}

// Producers returns the monitors that produce the given data type, sorted by
// identifier. The returned slice must not be modified.
func (idx *Index) Producers(d DataTypeID) []MonitorID {
	return idx.producers[d]
}

// MonitorProduces reports whether monitor m produces data type d.
func (idx *Index) MonitorProduces(m MonitorID, d DataTypeID) bool {
	return idx.produces[m][d]
}

// AttackEvidence returns the deduplicated evidence union of an attack,
// sorted by identifier. The returned slice must not be modified.
func (idx *Index) AttackEvidence(id AttackID) []DataTypeID {
	return idx.attackEvidence[id]
}

// MonitorIDs returns all monitor identifiers in sorted order.
func (idx *Index) MonitorIDs() []MonitorID {
	out := make([]MonitorID, 0, len(idx.monitors))
	for id := range idx.monitors {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AttackIDs returns all attack identifiers in sorted order.
func (idx *Index) AttackIDs() []AttackID {
	out := make([]AttackID, 0, len(idx.attacks))
	for id := range idx.attacks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DataTypeIDs returns all data type identifiers in sorted order.
func (idx *Index) DataTypeIDs() []DataTypeID {
	out := make([]DataTypeID, 0, len(idx.dataTypes))
	for id := range idx.dataTypes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ObservableEvidence reports how many of the attack's evidence items are
// producible by at least one monitor in the whole system. Attacks whose
// evidence nobody can produce bound achievable coverage below 1.
func (idx *Index) ObservableEvidence(id AttackID) int {
	n := 0
	for _, e := range idx.attackEvidence[id] {
		if len(idx.producers[e]) > 0 {
			n++
		}
	}
	return n
}
