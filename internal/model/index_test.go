package model

import (
	"errors"
	"testing"
)

func mustIndex(t *testing.T, sys *System) *Index {
	t.Helper()
	idx, err := NewIndex(sys)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	return idx
}

func TestNewIndexRejectsInvalidSystem(t *testing.T) {
	sys := testSystem()
	sys.Monitors[0].Produces = nil
	if _, err := NewIndex(sys); !errors.Is(err, ErrInvalidSystem) {
		t.Errorf("error = %v, want ErrInvalidSystem", err)
	}
}

func TestIndexLookups(t *testing.T) {
	idx := mustIndex(t, testSystem())

	if a, ok := idx.Asset("web"); !ok || a.Name != "Web server" {
		t.Errorf("Asset(web) = (%v, %v)", a, ok)
	}
	if _, ok := idx.Asset("ghost"); ok {
		t.Error("Asset(ghost) found")
	}
	if d, ok := idx.DataType("netflow"); !ok || d.Name != "Netflow record" {
		t.Errorf("DataType(netflow) = (%v, %v)", d, ok)
	}
	if _, ok := idx.DataType("ghost"); ok {
		t.Error("DataType(ghost) found")
	}
	if m, ok := idx.Monitor("m-db"); !ok || m.TotalCost() != 30 {
		t.Errorf("Monitor(m-db) = (%v, %v)", m, ok)
	}
	if _, ok := idx.Monitor("ghost"); ok {
		t.Error("Monitor(ghost) found")
	}
	if a, ok := idx.Attack("sqli"); !ok || a.Weight != 2 {
		t.Errorf("Attack(sqli) = (%v, %v)", a, ok)
	}
	if _, ok := idx.Attack("ghost"); ok {
		t.Error("Attack(ghost) found")
	}
	if idx.System().Name != "test" {
		t.Errorf("System().Name = %q", idx.System().Name)
	}
}

func TestIndexProducers(t *testing.T) {
	idx := mustIndex(t, testSystem())

	got := idx.Producers("http-log")
	want := []MonitorID{"m-http", "m-net"}
	if len(got) != len(want) {
		t.Fatalf("Producers(http-log) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Producers[%d] = %v, want %v (sorted)", i, got[i], want[i])
		}
	}
	if len(idx.Producers("ghost")) != 0 {
		t.Error("Producers(ghost) non-empty")
	}

	if !idx.MonitorProduces("m-net", "netflow") {
		t.Error("MonitorProduces(m-net, netflow) = false")
	}
	if idx.MonitorProduces("m-net", "sql-audit") {
		t.Error("MonitorProduces(m-net, sql-audit) = true")
	}
	if idx.MonitorProduces("ghost", "netflow") {
		t.Error("MonitorProduces(ghost, netflow) = true")
	}
}

func TestIndexAttackEvidence(t *testing.T) {
	idx := mustIndex(t, testSystem())
	ev := idx.AttackEvidence("sqli")
	if len(ev) != 2 || ev[0] != "http-log" || ev[1] != "sql-audit" {
		t.Errorf("AttackEvidence(sqli) = %v", ev)
	}
	if len(idx.AttackEvidence("ghost")) != 0 {
		t.Error("AttackEvidence(ghost) non-empty")
	}
}

func TestIndexIDListsSorted(t *testing.T) {
	idx := mustIndex(t, testSystem())

	mids := idx.MonitorIDs()
	if len(mids) != 3 || mids[0] != "m-db" || mids[1] != "m-http" || mids[2] != "m-net" {
		t.Errorf("MonitorIDs = %v", mids)
	}
	aids := idx.AttackIDs()
	if len(aids) != 2 || aids[0] != "exfil" || aids[1] != "sqli" {
		t.Errorf("AttackIDs = %v", aids)
	}
	dids := idx.DataTypeIDs()
	if len(dids) != 3 || dids[0] != "http-log" {
		t.Errorf("DataTypeIDs = %v", dids)
	}
}

func TestObservableEvidence(t *testing.T) {
	sys := testSystem()
	// Add a data type nobody produces, used as evidence by sqli.
	sys.DataTypes = append(sys.DataTypes, DataType{ID: "memory-dump", Name: "Memory dump"})
	sys.Attacks[0].Steps[0].Evidence = append(sys.Attacks[0].Steps[0].Evidence, "memory-dump")
	idx := mustIndex(t, sys)

	// sqli evidence: http-log, sql-audit, memory-dump; only 2 observable.
	if got := idx.ObservableEvidence("sqli"); got != 2 {
		t.Errorf("ObservableEvidence(sqli) = %d, want 2", got)
	}
	if got := idx.ObservableEvidence("exfil"); got != 1 {
		t.Errorf("ObservableEvidence(exfil) = %d, want 1", got)
	}
}
