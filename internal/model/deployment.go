package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Deployment is a set of monitors selected for deployment. The zero value is
// an empty deployment ready to use.
type Deployment struct {
	members map[MonitorID]bool
}

// NewDeployment returns a deployment containing the given monitors.
func NewDeployment(ids ...MonitorID) *Deployment {
	d := &Deployment{members: make(map[MonitorID]bool, len(ids))}
	for _, id := range ids {
		d.members[id] = true
	}
	return d
}

// Add inserts a monitor into the deployment.
func (d *Deployment) Add(id MonitorID) {
	if d.members == nil {
		d.members = make(map[MonitorID]bool)
	}
	d.members[id] = true
}

// Remove deletes a monitor from the deployment.
func (d *Deployment) Remove(id MonitorID) {
	delete(d.members, id)
}

// Contains reports whether the deployment includes the monitor.
func (d *Deployment) Contains(id MonitorID) bool {
	return d.members[id]
}

// Len reports the number of deployed monitors.
func (d *Deployment) Len() int { return len(d.members) }

// IDs returns the deployed monitor identifiers in sorted order.
func (d *Deployment) IDs() []MonitorID {
	out := make([]MonitorID, 0, len(d.members))
	for id := range d.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Each calls f for every deployed monitor in unspecified order. It avoids
// the sort cost of IDs for callers whose result is order-independent, such
// as redundancy counting.
func (d *Deployment) Each(f func(MonitorID)) {
	for id := range d.members {
		f(id)
	}
}

// Clone returns an independent copy of the deployment.
func (d *Deployment) Clone() *Deployment {
	cp := &Deployment{members: make(map[MonitorID]bool, len(d.members))}
	for id := range d.members {
		cp.members[id] = true
	}
	return cp
}

// Union returns a new deployment containing the monitors of both inputs.
func (d *Deployment) Union(other *Deployment) *Deployment {
	u := d.Clone()
	if other != nil {
		for id := range other.members {
			u.members[id] = true
		}
	}
	return u
}

// Cost sums the total cost of the deployed monitors using the index.
// Monitors not present in the index contribute nothing. Summation runs in
// sorted identifier order so the result is bit-for-bit reproducible across
// processes (float addition is not associative; map order would leak into
// the low bits otherwise).
func (d *Deployment) Cost(idx *Index) float64 {
	sum := 0.0
	for _, id := range d.IDs() {
		if m, ok := idx.Monitor(id); ok {
			sum += m.TotalCost()
		}
	}
	return sum
}

// String renders the deployment as a sorted, comma-separated identifier list.
func (d *Deployment) String() string {
	ids := d.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports whether two deployments contain the same monitors.
func (d *Deployment) Equal(other *Deployment) bool {
	if other == nil {
		return d.Len() == 0
	}
	if len(d.members) != len(other.members) {
		return false
	}
	for id := range d.members {
		if !other.members[id] {
			return false
		}
	}
	return true
}

// deploymentJSON is the on-disk representation of a Deployment.
type deploymentJSON struct {
	Monitors []MonitorID `json:"monitors"`
}

// MarshalJSON encodes the deployment as {"monitors": [...]} with sorted
// identifiers.
func (d *Deployment) MarshalJSON() ([]byte, error) {
	return json.Marshal(deploymentJSON{Monitors: d.IDs()})
}

// UnmarshalJSON decodes the {"monitors": [...]} representation.
func (d *Deployment) UnmarshalJSON(data []byte) error {
	var raw deploymentJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("model: decode deployment: %w", err)
	}
	d.members = make(map[MonitorID]bool, len(raw.Monitors))
	for _, id := range raw.Monitors {
		d.members[id] = true
	}
	return nil
}

// DecodeDeployment reads a JSON-encoded deployment from r.
func DecodeDeployment(r io.Reader) (*Deployment, error) {
	var d Deployment
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("model: decode deployment: %w", err)
	}
	return &d, nil
}

// EncodeDeployment writes the deployment to w as indented JSON.
func EncodeDeployment(w io.Writer, d *Deployment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("model: encode deployment: %w", err)
	}
	return nil
}
