package model

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	sys := testSystem()
	var buf bytes.Buffer
	if err := EncodeSystem(&buf, sys); err != nil {
		t.Fatalf("EncodeSystem: %v", err)
	}
	back, err := DecodeSystem(&buf)
	if err != nil {
		t.Fatalf("DecodeSystem: %v", err)
	}
	if !reflect.DeepEqual(sys, back) {
		t.Errorf("round trip changed system:\n before: %+v\n after:  %+v", sys, back)
	}
}

func TestDecodeSystemRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSystem(strings.NewReader(`{"name":"x","bogus":1}`))
	if err == nil {
		t.Fatal("DecodeSystem accepted unknown field")
	}
}

func TestDecodeSystemRejectsMalformedJSON(t *testing.T) {
	_, err := DecodeSystem(strings.NewReader(`{"name":`))
	if err == nil {
		t.Fatal("DecodeSystem accepted malformed JSON")
	}
}

func TestDecodeSystemValidates(t *testing.T) {
	// Structurally valid JSON but semantically invalid system (monitor with
	// no produced data).
	payload := `{
	  "name": "bad",
	  "assets": [{"id": "a", "name": "A"}],
	  "dataTypes": [{"id": "d", "name": "D"}],
	  "monitors": [{"id": "m", "name": "M", "produces": [], "capitalCost": 1, "operationalCost": 1}],
	  "attacks": [{"id": "x", "name": "X", "steps": [{"name": "s", "evidence": ["d"]}]}]
	}`
	if _, err := DecodeSystem(strings.NewReader(payload)); err == nil {
		t.Fatal("DecodeSystem accepted invalid system")
	}
}
