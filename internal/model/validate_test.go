package model

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*System)
		wantSub string
	}{
		{
			name:    "empty asset id",
			mutate:  func(s *System) { s.Assets[0].ID = "" },
			wantSub: "empty id",
		},
		{
			name:    "duplicate asset id",
			mutate:  func(s *System) { s.Assets[1].ID = s.Assets[0].ID },
			wantSub: "duplicate asset",
		},
		{
			name:    "negative criticality",
			mutate:  func(s *System) { s.Assets[0].Criticality = -1 },
			wantSub: "criticality",
		},
		{
			name:    "nan criticality",
			mutate:  func(s *System) { s.Assets[0].Criticality = math.NaN() },
			wantSub: "criticality",
		},
		{
			name:    "empty data type id",
			mutate:  func(s *System) { s.DataTypes[0].ID = "" },
			wantSub: "empty id",
		},
		{
			name: "duplicate data type id",
			mutate: func(s *System) {
				s.DataTypes[1].ID = s.DataTypes[0].ID
			},
			wantSub: "duplicate data type",
		},
		{
			name:    "data type unknown asset",
			mutate:  func(s *System) { s.DataTypes[0].Asset = "ghost" },
			wantSub: "unknown asset",
		},
		{
			name:    "empty monitor id",
			mutate:  func(s *System) { s.Monitors[0].ID = "" },
			wantSub: "empty id",
		},
		{
			name:    "duplicate monitor id",
			mutate:  func(s *System) { s.Monitors[1].ID = s.Monitors[0].ID },
			wantSub: "duplicate monitor",
		},
		{
			name:    "monitor unknown asset",
			mutate:  func(s *System) { s.Monitors[0].Asset = "ghost" },
			wantSub: "unknown asset",
		},
		{
			name:    "monitor produces nothing",
			mutate:  func(s *System) { s.Monitors[0].Produces = nil },
			wantSub: "produces no data",
		},
		{
			name:    "monitor produces unknown data",
			mutate:  func(s *System) { s.Monitors[0].Produces = []DataTypeID{"ghost"} },
			wantSub: "unknown data type",
		},
		{
			name: "monitor duplicate data",
			mutate: func(s *System) {
				s.Monitors[0].Produces = []DataTypeID{"http-log", "http-log"}
			},
			wantSub: "twice",
		},
		{
			name:    "negative capital cost",
			mutate:  func(s *System) { s.Monitors[0].CapitalCost = -5 },
			wantSub: "capital cost",
		},
		{
			name:    "infinite operational cost",
			mutate:  func(s *System) { s.Monitors[0].OperationalCost = math.Inf(1) },
			wantSub: "operational cost",
		},
		{
			name:    "empty attack id",
			mutate:  func(s *System) { s.Attacks[0].ID = "" },
			wantSub: "empty id",
		},
		{
			name:    "duplicate attack id",
			mutate:  func(s *System) { s.Attacks[1].ID = s.Attacks[0].ID },
			wantSub: "duplicate attack",
		},
		{
			name:    "negative weight",
			mutate:  func(s *System) { s.Attacks[0].Weight = -2 },
			wantSub: "weight",
		},
		{
			name:    "attack without steps",
			mutate:  func(s *System) { s.Attacks[0].Steps = nil },
			wantSub: "no steps",
		},
		{
			name: "attack step unknown evidence",
			mutate: func(s *System) {
				s.Attacks[0].Steps[0].Evidence = []DataTypeID{"ghost"}
			},
			wantSub: "unknown data type",
		},
		{
			name: "attack without evidence",
			mutate: func(s *System) {
				s.Attacks[0].Steps = []AttackStep{{Name: "silent"}}
			},
			wantSub: "no evidence",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys := testSystem()
			tt.mutate(sys)
			err := sys.Validate()
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !errors.Is(err, ErrInvalidSystem) {
				t.Errorf("error %v does not wrap ErrInvalidSystem", err)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateAllowsUnanchoredEntities(t *testing.T) {
	// Data types and monitors without an asset are legal (network-wide
	// observables).
	sys := testSystem()
	sys.DataTypes[2].Asset = ""
	sys.Monitors[2].Asset = ""
	if err := sys.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateAllowsZeroCost(t *testing.T) {
	sys := testSystem()
	sys.Monitors[0].CapitalCost = 0
	sys.Monitors[0].OperationalCost = 0
	if err := sys.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
