package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestDeploymentZeroValueUsable(t *testing.T) {
	var d Deployment
	if d.Len() != 0 || d.Contains("m") {
		t.Error("zero deployment not empty")
	}
	d.Add("m")
	if !d.Contains("m") || d.Len() != 1 {
		t.Error("Add on zero value failed")
	}
}

func TestDeploymentBasics(t *testing.T) {
	d := NewDeployment("b", "a")
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	ids := d.IDs()
	if ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v, want sorted [a b]", ids)
	}
	d.Remove("a")
	if d.Contains("a") || d.Len() != 1 {
		t.Error("Remove failed")
	}
	d.Remove("missing") // no-op
	if d.Len() != 1 {
		t.Error("Remove(missing) changed deployment")
	}
}

func TestDeploymentCloneIndependent(t *testing.T) {
	d := NewDeployment("a")
	cp := d.Clone()
	cp.Add("b")
	if d.Contains("b") {
		t.Error("clone shares storage")
	}
}

func TestDeploymentUnion(t *testing.T) {
	d := NewDeployment("a")
	u := d.Union(NewDeployment("b"))
	if !u.Contains("a") || !u.Contains("b") || u.Len() != 2 {
		t.Errorf("Union = %v", u)
	}
	if d.Len() != 1 {
		t.Error("Union mutated receiver")
	}
	if got := d.Union(nil); got.Len() != 1 {
		t.Errorf("Union(nil) = %v", got)
	}
}

func TestDeploymentCost(t *testing.T) {
	idx := mustIndex(t, testSystem())
	d := NewDeployment("m-http", "m-db", "ghost")
	if got := d.Cost(idx); got != 45 {
		t.Errorf("Cost = %v, want 45 (ghost ignored)", got)
	}
}

func TestDeploymentString(t *testing.T) {
	d := NewDeployment("m2", "m1")
	if got := d.String(); got != "{m1, m2}" {
		t.Errorf("String = %q, want {m1, m2}", got)
	}
}

func TestDeploymentEqual(t *testing.T) {
	a := NewDeployment("x", "y")
	b := NewDeployment("y", "x")
	if !a.Equal(b) {
		t.Error("equal deployments reported unequal")
	}
	b.Add("z")
	if a.Equal(b) {
		t.Error("unequal deployments reported equal")
	}
	if a.Equal(NewDeployment("x", "z")) {
		t.Error("same-size different deployments reported equal")
	}
	var empty Deployment
	if !empty.Equal(nil) {
		t.Error("empty deployment should equal nil")
	}
	if a.Equal(nil) {
		t.Error("non-empty deployment equals nil")
	}
}

func TestDeploymentJSONRoundTrip(t *testing.T) {
	d := NewDeployment("b", "a", "c")
	var buf bytes.Buffer
	if err := EncodeDeployment(&buf, d); err != nil {
		t.Fatalf("EncodeDeployment: %v", err)
	}
	if !strings.Contains(buf.String(), `"monitors"`) {
		t.Errorf("encoded form: %s", buf.String())
	}
	back, err := DecodeDeployment(&buf)
	if err != nil {
		t.Fatalf("DecodeDeployment: %v", err)
	}
	if !d.Equal(back) {
		t.Errorf("round trip changed deployment: %v vs %v", d, back)
	}
}

func TestDecodeDeploymentRejectsGarbage(t *testing.T) {
	if _, err := DecodeDeployment(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
}
