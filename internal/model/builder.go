package model

import "fmt"

// Builder provides fluent construction of a System with deferred error
// handling: building continues after an error, and Build returns the first
// error encountered alongside validation results. It keeps catalog and
// generator code free of per-call error plumbing.
type Builder struct {
	sys System
	err error
}

// NewBuilder starts a system with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{sys: System{Name: name}}
}

// Asset adds an asset with criticality 1.
func (b *Builder) Asset(id AssetID, name, kind string) *Builder {
	b.sys.Assets = append(b.sys.Assets, Asset{ID: id, Name: name, Kind: kind, Criticality: 1})
	return b
}

// CriticalAsset adds an asset with an explicit criticality.
func (b *Builder) CriticalAsset(id AssetID, name, kind string, criticality float64) *Builder {
	b.sys.Assets = append(b.sys.Assets, Asset{ID: id, Name: name, Kind: kind, Criticality: criticality})
	return b
}

// DataType adds an observable data type tied to an asset (asset may be
// empty) with the given event fields.
func (b *Builder) DataType(id DataTypeID, name string, asset AssetID, fields ...string) *Builder {
	b.sys.DataTypes = append(b.sys.DataTypes, DataType{ID: id, Name: name, Asset: asset, Fields: fields})
	return b
}

// Monitor adds a deployable monitor.
func (b *Builder) Monitor(id MonitorID, name string, asset AssetID, capital, operational float64, produces ...DataTypeID) *Builder {
	b.sys.Monitors = append(b.sys.Monitors, Monitor{
		ID:              id,
		Name:            name,
		Asset:           asset,
		Produces:        produces,
		CapitalCost:     capital,
		OperationalCost: operational,
	})
	return b
}

// Attack starts a weighted attack; add its stages with Step and finish with
// Done.
func (b *Builder) Attack(id AttackID, name string, weight float64) *AttackBuilder {
	return &AttackBuilder{parent: b, attack: Attack{ID: id, Name: name, Weight: weight}}
}

// Build validates and returns the constructed system.
func (b *Builder) Build() (*System, error) {
	if b.err != nil {
		return nil, b.err
	}
	sys := b.sys.Clone()
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("builder: %w", err)
	}
	return sys, nil
}

// AttackBuilder accumulates the steps of one attack.
type AttackBuilder struct {
	parent *Builder
	attack Attack
}

// Step appends a stage of the attack with its evidence data types.
func (ab *AttackBuilder) Step(name string, evidence ...DataTypeID) *AttackBuilder {
	ab.attack.Steps = append(ab.attack.Steps, AttackStep{Name: name, Evidence: evidence})
	return ab
}

// Done finishes the attack and returns to the system builder.
func (ab *AttackBuilder) Done() *Builder {
	ab.parent.sys.Attacks = append(ab.parent.sys.Attacks, ab.attack)
	return ab.parent
}
