package model

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidSystem is wrapped by every validation failure so callers can
// match the whole class with errors.Is.
var ErrInvalidSystem = errors.New("model: invalid system")

// Validate checks the structural integrity of the system: unique identifiers,
// resolvable references, sane numeric values, and that every monitor and
// attack participates in the evidence relation. It returns the first problem
// found.
func (s *System) Validate() error {
	assets := make(map[AssetID]bool, len(s.Assets))
	for _, a := range s.Assets {
		if a.ID == "" {
			return fmt.Errorf("%w: asset with empty id (name %q)", ErrInvalidSystem, a.Name)
		}
		if assets[a.ID] {
			return fmt.Errorf("%w: duplicate asset id %q", ErrInvalidSystem, a.ID)
		}
		if a.Criticality < 0 || math.IsNaN(a.Criticality) || math.IsInf(a.Criticality, 0) {
			return fmt.Errorf("%w: asset %q has criticality %v", ErrInvalidSystem, a.ID, a.Criticality)
		}
		assets[a.ID] = true
	}

	data := make(map[DataTypeID]bool, len(s.DataTypes))
	for _, d := range s.DataTypes {
		if d.ID == "" {
			return fmt.Errorf("%w: data type with empty id (name %q)", ErrInvalidSystem, d.Name)
		}
		if data[d.ID] {
			return fmt.Errorf("%w: duplicate data type id %q", ErrInvalidSystem, d.ID)
		}
		if d.Asset != "" && !assets[d.Asset] {
			return fmt.Errorf("%w: data type %q references unknown asset %q", ErrInvalidSystem, d.ID, d.Asset)
		}
		data[d.ID] = true
	}

	monitors := make(map[MonitorID]bool, len(s.Monitors))
	for _, m := range s.Monitors {
		if m.ID == "" {
			return fmt.Errorf("%w: monitor with empty id (name %q)", ErrInvalidSystem, m.Name)
		}
		if monitors[m.ID] {
			return fmt.Errorf("%w: duplicate monitor id %q", ErrInvalidSystem, m.ID)
		}
		if m.Asset != "" && !assets[m.Asset] {
			return fmt.Errorf("%w: monitor %q references unknown asset %q", ErrInvalidSystem, m.ID, m.Asset)
		}
		if len(m.Produces) == 0 {
			return fmt.Errorf("%w: monitor %q produces no data", ErrInvalidSystem, m.ID)
		}
		seen := make(map[DataTypeID]bool, len(m.Produces))
		for _, d := range m.Produces {
			if !data[d] {
				return fmt.Errorf("%w: monitor %q produces unknown data type %q", ErrInvalidSystem, m.ID, d)
			}
			if seen[d] {
				return fmt.Errorf("%w: monitor %q lists data type %q twice", ErrInvalidSystem, m.ID, d)
			}
			seen[d] = true
		}
		if err := validCost(m.CapitalCost); err != nil {
			return fmt.Errorf("%w: monitor %q capital cost: %v", ErrInvalidSystem, m.ID, err)
		}
		if err := validCost(m.OperationalCost); err != nil {
			return fmt.Errorf("%w: monitor %q operational cost: %v", ErrInvalidSystem, m.ID, err)
		}
		monitors[m.ID] = true
	}

	attacks := make(map[AttackID]bool, len(s.Attacks))
	for _, a := range s.Attacks {
		if a.ID == "" {
			return fmt.Errorf("%w: attack with empty id (name %q)", ErrInvalidSystem, a.Name)
		}
		if attacks[a.ID] {
			return fmt.Errorf("%w: duplicate attack id %q", ErrInvalidSystem, a.ID)
		}
		if a.Weight < 0 || math.IsNaN(a.Weight) || math.IsInf(a.Weight, 0) {
			return fmt.Errorf("%w: attack %q has weight %v", ErrInvalidSystem, a.ID, a.Weight)
		}
		if len(a.Steps) == 0 {
			return fmt.Errorf("%w: attack %q has no steps", ErrInvalidSystem, a.ID)
		}
		evidenceTotal := 0
		for si, step := range a.Steps {
			for _, e := range step.Evidence {
				if !data[e] {
					return fmt.Errorf("%w: attack %q step %d references unknown data type %q",
						ErrInvalidSystem, a.ID, si, e)
				}
				evidenceTotal++
			}
		}
		if evidenceTotal == 0 {
			return fmt.Errorf("%w: attack %q has no evidence in any step", ErrInvalidSystem, a.ID)
		}
		attacks[a.ID] = true
	}
	return nil
}

func validCost(c float64) error {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("cost %v is not a non-negative finite number", c)
	}
	return nil
}
