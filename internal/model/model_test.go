package model

import (
	"strings"
	"testing"
)

// testSystem returns a small, valid system used across the package tests:
// two assets, three data types, three monitors and two attacks.
func testSystem() *System {
	return &System{
		Name: "test",
		Assets: []Asset{
			{ID: "web", Name: "Web server", Kind: "host", Criticality: 1},
			{ID: "db", Name: "Database", Kind: "host", Criticality: 2},
		},
		DataTypes: []DataType{
			{ID: "http-log", Name: "HTTP access log", Asset: "web", Fields: []string{"src", "url", "status"}},
			{ID: "sql-audit", Name: "SQL audit log", Asset: "db", Fields: []string{"user", "query"}},
			{ID: "netflow", Name: "Netflow record", Fields: []string{"src", "dst", "bytes"}},
		},
		Monitors: []Monitor{
			{ID: "m-http", Name: "Web log collector", Asset: "web", Produces: []DataTypeID{"http-log"}, CapitalCost: 10, OperationalCost: 5},
			{ID: "m-db", Name: "DB audit", Asset: "db", Produces: []DataTypeID{"sql-audit"}, CapitalCost: 20, OperationalCost: 10},
			{ID: "m-net", Name: "Netflow probe", Produces: []DataTypeID{"netflow", "http-log"}, CapitalCost: 30, OperationalCost: 0},
		},
		Attacks: []Attack{
			{
				ID: "sqli", Name: "SQL injection", Weight: 2,
				Steps: []AttackStep{
					{Name: "probe", Evidence: []DataTypeID{"http-log"}},
					{Name: "inject", Evidence: []DataTypeID{"http-log", "sql-audit"}},
				},
			},
			{
				ID: "exfil", Name: "Data exfiltration", Weight: 0, // defaults to 1
				Steps: []AttackStep{
					{Name: "transfer", Evidence: []DataTypeID{"netflow"}},
				},
			},
		},
	}
}

func TestEvidenceUnionDeduplicatesAndSorts(t *testing.T) {
	sys := testSystem()
	got := sys.Attacks[0].EvidenceUnion()
	want := []DataTypeID{"http-log", "sql-audit"}
	if len(got) != len(want) {
		t.Fatalf("EvidenceUnion = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EvidenceUnion[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMonitorTotalCost(t *testing.T) {
	m := Monitor{CapitalCost: 12, OperationalCost: 8}
	if got := m.TotalCost(); got != 20 {
		t.Errorf("TotalCost = %v, want 20", got)
	}
}

func TestSystemTotals(t *testing.T) {
	sys := testSystem()
	if got := sys.TotalMonitorCost(); got != 75 {
		t.Errorf("TotalMonitorCost = %v, want 75", got)
	}
	// Weight 2 plus defaulted weight 1.
	if got := sys.TotalAttackWeight(); got != 3 {
		t.Errorf("TotalAttackWeight = %v, want 3", got)
	}
}

func TestAttackWeightDefault(t *testing.T) {
	if got := AttackWeight(Attack{Weight: 0}); got != 1 {
		t.Errorf("AttackWeight(0) = %v, want 1", got)
	}
	if got := AttackWeight(Attack{Weight: 2.5}); got != 2.5 {
		t.Errorf("AttackWeight(2.5) = %v, want 2.5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	sys := testSystem()
	cp := sys.Clone()

	cp.Monitors[0].Produces[0] = "tampered"
	cp.Attacks[0].Steps[0].Evidence[0] = "tampered"
	cp.DataTypes[0].Fields[0] = "tampered"
	cp.Assets[0].ID = "tampered"

	if sys.Monitors[0].Produces[0] != "http-log" {
		t.Error("clone shares monitor produces slice")
	}
	if sys.Attacks[0].Steps[0].Evidence[0] != "http-log" {
		t.Error("clone shares attack evidence slice")
	}
	if sys.DataTypes[0].Fields[0] != "src" {
		t.Error("clone shares data type fields slice")
	}
	if sys.Assets[0].ID != "web" {
		t.Error("clone shares asset storage")
	}
}

func TestSystemString(t *testing.T) {
	sys := testSystem()
	s := sys.String()
	for _, want := range []string{"test", "2 assets", "3 data types", "3 monitors", "2 attacks"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestValidateAcceptsTestSystem(t *testing.T) {
	if err := testSystem().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
