package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// DecodeSystem reads a JSON-encoded system from r and validates it.
func DecodeSystem(r io.Reader) (*System, error) {
	var s System
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decode system: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeSystem writes the system to w as indented JSON.
func EncodeSystem(w io.Writer, s *System) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("model: encode system: %w", err)
	}
	return nil
}
