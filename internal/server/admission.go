package server

import (
	"container/list"
	"context"
	"sync"
)

// admitResult classifies the outcome of an admission attempt.
type admitResult int

const (
	// admitted means a solve slot was granted; the caller must release it.
	admitted admitResult = iota
	// admitRejected means the queue was full; reply 429 immediately.
	admitRejected
	// admitTimedOut means the request's context expired while queued; no
	// slot was consumed. Reply 408.
	admitTimedOut
)

// admission is the fair admission queue that replaces the bare solve-slot
// semaphore: a bounded number of waiters, grouped per tenant, dispatched by
// weighted round-robin as slots free up. Fairness is between tenants, FIFO
// within a tenant, so one tenant's burst cannot starve the others however
// deep its backlog. Waiters carry their request context; a context that
// expires while queued abandons the wait without ever consuming a slot.
type admission struct {
	mu      sync.Mutex
	slots   int // free solve slots
	depth   int // max queued waiters; < 0 means unbounded
	queued  int // live (non-cancelled) queued waiters
	weights map[string]int

	queues map[string]*list.List // tenant -> FIFO of *waiter
	ring   []string              // tenants with queued waiters, RR order
	cur    int                   // ring index currently being served
	credit int                   // grants left for ring[cur] this round
}

// waiter is one queued request. granted and cancelled are guarded by the
// admission mutex; ready is closed exactly once, on grant.
type waiter struct {
	tenant    string
	ready     chan struct{}
	granted   bool
	cancelled bool
}

func newAdmission(slots, depth int, weights map[string]int) *admission {
	return &admission{
		slots:   slots,
		depth:   depth,
		weights: weights,
		queues:  make(map[string]*list.List),
	}
}

// weight returns the tenant's configured dispatch weight (default 1).
func (a *admission) weight(tenant string) int {
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// admit claims a solve slot for the tenant, queueing behind the weighted
// round-robin dispatcher when none is free. waited reports whether the
// request actually queued (for the stats counters).
func (a *admission) admit(ctx context.Context, tenant string) (res admitResult, waited bool) {
	a.mu.Lock()
	if a.slots > 0 && a.queued == 0 {
		a.slots--
		a.mu.Unlock()
		return admitted, false
	}
	if a.depth >= 0 && a.queued >= a.depth {
		a.mu.Unlock()
		return admitRejected, false
	}
	w := &waiter{tenant: tenant, ready: make(chan struct{})}
	q, ok := a.queues[tenant]
	if !ok {
		q = list.New()
		a.queues[tenant] = q
	}
	if q.Len() == 0 {
		a.ring = append(a.ring, tenant)
	}
	q.PushBack(w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return admitted, true
	case <-ctx.Done():
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		// The grant raced the deadline; the slot is ours after all.
		return admitted, true
	}
	// Leave the dead waiter in its queue; the dispatcher skips and reaps
	// cancelled entries, so no slot is ever burned on it.
	w.cancelled = true
	a.queued--
	return admitTimedOut, false
}

// release returns a slot and hands it to the next queued waiter, if any.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.slots++
	a.dispatchLocked()
}

// dispatchLocked hands free slots to queued waiters in weighted round-robin
// tenant order: the current tenant receives up to weight(tenant) consecutive
// grants before the turn passes on, and tenants whose queues empty leave the
// ring. Cancelled waiters are reaped here, costing nothing.
func (a *admission) dispatchLocked() {
	for a.slots > 0 && a.queued > 0 {
		if len(a.ring) == 0 {
			return // only cancelled stragglers remain; keep queued consistent
		}
		if a.cur >= len(a.ring) {
			a.cur = 0
		}
		tenant := a.ring[a.cur]
		if a.credit <= 0 {
			a.credit = a.weight(tenant)
		}
		q := a.queues[tenant]
		var w *waiter
		for q.Len() > 0 {
			el := q.Front()
			q.Remove(el)
			cand := el.Value.(*waiter)
			if cand.cancelled {
				continue
			}
			w = cand
			break
		}
		if w == nil {
			// Tenant queue drained: drop it from the ring, turn passes on.
			a.ring = append(a.ring[:a.cur], a.ring[a.cur+1:]...)
			a.credit = 0
			continue
		}
		w.granted = true
		close(w.ready)
		a.slots--
		a.queued--
		a.credit--
		if q.Len() == 0 {
			a.ring = append(a.ring[:a.cur], a.ring[a.cur+1:]...)
			a.credit = 0
		} else if a.credit <= 0 {
			a.cur++
		}
	}
}
