package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func jsonDecode(resp *http.Response, into any) error {
	return json.NewDecoder(resp.Body).Decode(into)
}

// TestCoalesceSingleSolve floods the server with identical requests and
// requires that exactly one underlying solve runs, every response is
// bit-identical, and the followers are answered from the leader's flight.
// The response cache is disabled, so any request that failed to coalesce
// would be forced to run (and be counted as) its own solve.
func TestCoalesceSingleSolve(t *testing.T) {
	const clients = 100

	s := New(Config{CacheSize: -1})
	var solves atomic.Int64
	gate := make(chan struct{})
	s.testSolveHook = func(kind string) {
		solves.Add(1)
		<-gate // hold the leader's solve until every client has joined
	}
	joined := make(chan struct{}, clients)
	s.testJoinHook = func(leader bool) { joined <- struct{}{} }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sys := testSystem(t, 12, 6)
	budget := 20.0
	req := OptimizeRequest{System: sys, Budget: &budget}

	type outcome struct {
		status int
		cache  string
		body   []byte
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
			results[i] = outcome{resp.StatusCode, resp.Header.Get(cacheHeader), body}
		}(i)
	}
	for i := 0; i < clients; i++ {
		select {
		case <-joined:
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d/%d requests joined the flight", i, clients)
		}
	}
	close(gate)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want exactly 1", got)
	}
	misses, coalesced := 0, 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("client %d: body differs from client 0:\n%s\nvs\n%s", i, r.body, results[0].body)
		}
		switch r.cache {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("client %d: unexpected %s header %q", i, cacheHeader, r.cache)
		}
	}
	if misses != 1 || coalesced != clients-1 {
		t.Fatalf("got %d miss / %d coalesced, want 1 / %d", misses, coalesced, clients-1)
	}
	out := decodeOptimize(t, results[0].body)
	if out.Result == nil || !out.Result.Proven {
		t.Fatalf("coalesced result not proven: %+v", out.Result)
	}
}

// TestCoalesceFollowerDeadline pins the contract that a follower's shorter
// deadline bounds only its own wait, never the leader's solve: the follower
// times out with 408 while the blocked leader still completes with a full
// 200.
func TestCoalesceFollowerDeadline(t *testing.T) {
	s := New(Config{CacheSize: -1})
	gate := make(chan struct{})
	s.testSolveHook = func(kind string) { <-gate }
	joined := make(chan bool, 4)
	s.testJoinHook = func(leader bool) { joined <- leader }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sys := testSystem(t, 12, 6)
	budget := 20.0

	leaderDone := make(chan outcomePair, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/optimize",
			OptimizeRequest{System: sys, Budget: &budget, DeadlineMillis: 60_000})
		leaderDone <- outcomePair{resp.StatusCode, body}
	}()
	if leader := <-joined; !leader {
		t.Fatal("first request did not become flight leader")
	}

	// Follower with a 50ms deadline: must 408 without touching the leader.
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, Budget: &budget, DeadlineMillis: 50})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("follower status = %d, body %s; want 408", resp.StatusCode, body)
	}

	close(gate)
	lead := <-leaderDone
	if lead.status != http.StatusOK {
		t.Fatalf("leader status = %d, body %s; want 200", lead.status, lead.body)
	}
	out := decodeOptimize(t, lead.body)
	if out.Result == nil || !out.Result.Proven {
		t.Fatalf("leader result not proven after follower timeout: %+v", out.Result)
	}
}

type outcomePair struct {
	status int
	body   []byte
}

// TestSweepPartialPointCache reruns a sweep over a grid that overlaps an
// earlier one and requires (a) the overlap to be served from the per-point
// cache ("partial" response), and (b) the assembled response to be
// bit-identical to the same request solved fresh on a second server.
func TestSweepPartialPointCache(t *testing.T) {
	sys := testSystem(t, 12, 6)
	grid1 := []float64{10, 20, 30}
	grid2 := []float64{10, 15, 20, 25, 30}

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{System: sys, Budgets: grid1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first sweep: status %d, body %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get(cacheHeader); h != "miss" {
		t.Fatalf("first sweep %s = %q, want miss", cacheHeader, h)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{System: sys, Budgets: grid2})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second sweep: status %d, body %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get(cacheHeader); h != "partial" {
		t.Fatalf("second sweep %s = %q, want partial", cacheHeader, h)
	}
	if hits := s.stats.sweepPointHits.Load(); hits == 0 {
		t.Fatal("second sweep reported no per-point cache hits")
	}

	fresh := New(Config{})
	tsFresh := httptest.NewServer(fresh.Handler())
	defer tsFresh.Close()
	respF, bodyF := postJSON(t, tsFresh.URL+"/v1/sweep", SweepRequest{System: sys, Budgets: grid2})
	if respF.StatusCode != http.StatusOK {
		t.Fatalf("fresh sweep: status %d, body %s", respF.StatusCode, bodyF)
	}
	if got, want := normalizeSweepBody(t, body2), normalizeSweepBody(t, bodyF); !bytes.Equal(got, want) {
		t.Fatalf("partial-assembled sweep differs from fresh solve:\n%s\nvs\n%s", got, want)
	}
}

// normalizeSweepBody zeroes the wall-clock elapsed fields, the only
// legitimately run-dependent part of a sweep response, so bodies can be
// compared bit-for-bit.
func normalizeSweepBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode sweep response %s: %v", body, err)
	}
	for _, p := range out.Points {
		if p.Optimal != nil {
			p.Optimal.Stats.Elapsed = 0
		}
		if p.Greedy != nil {
			p.Greedy.Stats.Elapsed = 0
		}
		if p.Random != nil {
			p.Random.Stats.Elapsed = 0
		}
	}
	norm, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("re-marshal sweep response: %v", err)
	}
	return norm
}

// TestStatsEndpoint checks that /v1/stats reports the serving counters.
func TestStatsEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sys := testSystem(t, 12, 6)
	budget := 20.0
	postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys, Budget: &budget, Tenant: "acme"})
	postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys, Budget: &budget, Tenant: "acme"})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Solves != 1 {
		t.Fatalf("stats solves = %d, want 1 (second request is a cache hit)", st.Solves)
	}
	if st.CacheHits != 1 {
		t.Fatalf("stats cacheHits = %d, want 1", st.CacheHits)
	}
	if st.Tenants["acme"] != 1 {
		t.Fatalf("stats tenants[acme] = %d, want 1; tenants %v", st.Tenants["acme"], st.Tenants)
	}
}
