package server

import (
	"encoding/json"
	"math"
	"strconv"

	"secmon/internal/core"
	"secmon/internal/model"
)

// sweepPointKeyFields is the subset of a sweep request that determines one
// budget point's result: the system, the baseline seed, and the per-solve
// worker count. Grid shape (steps, budgets, point-level workers) and
// deadlines deliberately do not participate — a point proven under one grid
// is the same point under any other, which is what lets differently shaped
// sweeps share budget points.
type sweepPointKeyFields struct {
	System        *model.System `json:"system,omitempty"`
	Seed          int64         `json:"seed"`
	SolverWorkers int           `json:"solverWorkers"`
}

// sweepPointPrefix hashes the point-relevant request fields once per sweep;
// individual point keys append only the budget, so an N-point sweep pays
// for one request hash rather than N.
func sweepPointPrefix(req *SweepRequest) (string, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	solverWorkers := req.SolverWorkers
	if solverWorkers == 0 {
		solverWorkers = 1
	}
	return requestKey("sweep-point", &sweepPointKeyFields{
		System:        req.System,
		Seed:          seed,
		SolverWorkers: solverWorkers,
	})
}

// sweepPointKey is the cache key for one budget point. The budget is keyed
// by its exact bit pattern: two budgets alias only when they are the same
// float64, matching the solver's own duplicate-budget detection.
func sweepPointKey(prefix string, budget float64) string {
	return prefix + ":" + strconv.FormatUint(math.Float64bits(budget), 16)
}

// decodeSweepPoint revives a cached budget point. The optimal result's
// Deployment is not serialized (it is derived state), so it is rebuilt from
// the monitor list here — the stabilization pass needs it to compare and
// share deployments across the merged curve. A point that fails to decode is
// treated as a miss.
func decodeSweepPoint(body []byte) (core.SweepPoint, bool) {
	var p core.SweepPoint
	if err := json.Unmarshal(body, &p); err != nil {
		return core.SweepPoint{}, false
	}
	if p.Optimal == nil {
		return core.SweepPoint{}, false
	}
	d := model.NewDeployment()
	for _, id := range p.Optimal.Monitors {
		d.Add(id)
	}
	p.Optimal.Deployment = d
	return p, true
}
