package server

import (
	"context"
	"sync"
)

// flight is one in-progress solve shared by every identical in-flight
// request. The leader computes, publishes the finished response, and closes
// done; followers wait on done under their own deadlines. Only shared
// (proven, deadline-independent) responses are replayed to followers —
// anything else makes each follower retry under its own deadline, since an
// error or a truncated result may be specific to the leader's run.
type flight struct {
	done   chan struct{}
	status int
	header string // Secmon-Cache value of the leader's response, if any
	body   []byte
	shared bool
}

// flightGroup implements request coalescing (singleflight keyed by the
// canonical request hash): at most one solve per distinct problem is in
// flight at a time, however many clients are asking.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join claims leadership of the flight for key, or returns the existing
// flight to follow. The leader MUST eventually call finish.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the leader's response and wakes every follower. shared
// marks the response as replayable: a proven 200 body any identical request
// may reuse verbatim. The flight is removed from the group first, so a
// request arriving after finish starts a fresh flight (the response cache,
// not the flight group, is the long-term store).
func (g *flightGroup) finish(key string, f *flight, status int, header string, body []byte, shared bool) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.status = status
	f.header = header
	f.body = body
	f.shared = shared
	close(f.done)
}

// wait blocks until the flight completes or ctx expires. ok reports that
// the flight finished in time; the caller then inspects f.shared.
func (f *flight) wait(ctx context.Context) bool {
	select {
	case <-f.done:
		return true
	case <-ctx.Done():
		return false
	}
}
