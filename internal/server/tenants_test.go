package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"secmon/internal/state"
)

// newStateServer builds a server backed by a tenant state store in dir and
// returns both, so tests can close and reopen the same directory to exercise
// restart replay.
func newStateServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{StateDir: dir})
	if s.storeErr != nil {
		t.Fatalf("open state store: %v", s.storeErr)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func decodeTenant(t *testing.T, body []byte) TenantResponse {
	t.Helper()
	var out TenantResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode tenant response %s: %v", body, err)
	}
	return out
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, out
}

// TestTenantLifecycle drives the full tenant surface over HTTP: create,
// read, mutate (including a rejected batch), list, stats — then restarts the
// server on the same directory and requires the replayed tenant to report
// the identical version and result.
func TestTenantLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newStateServer(t, dir)
	sys := testSystem(t, 16, 10)

	total := 0.0
	for i := range sys.Monitors {
		total += sys.Monitors[i].TotalCost()
	}
	spec := state.SolveSpec{Budget: 0.35 * total, Workers: 1}

	resp, body := postJSON(t, ts.URL+"/v1/tenants/acme", TenantCreateRequest{System: sys, Spec: spec})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	created := decodeTenant(t, body)
	if created.Version != 1 || created.Result == nil || !created.Result.Proven {
		t.Fatalf("create: version %d, result %+v", created.Version, created.Result)
	}

	// Duplicate creation is a 409.
	resp, body = postJSON(t, ts.URL+"/v1/tenants/acme", TenantCreateRequest{System: sys, Spec: spec})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d: %s", resp.StatusCode, body)
	}

	// A batch: tighten the budget and bump a cost.
	b := spec.Budget * 0.85
	c := sys.Monitors[0].CapitalCost * 2
	resp, body = postJSON(t, ts.URL+"/v1/tenants/acme/mutate", TenantMutateRequest{Deltas: []state.Delta{
		{Op: state.OpUpdateBudget, Budget: &b},
		{Op: state.OpUpdateCost, MonitorID: sys.Monitors[0].ID, CapitalCost: &c},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, body)
	}
	mutated := decodeTenant(t, body)
	if mutated.Version != 3 {
		t.Fatalf("mutate: version %d, want 3", mutated.Version)
	}
	if mutated.Spec.Budget != b {
		t.Fatalf("mutate: budget %v, want %v", mutated.Spec.Budget, b)
	}

	// A delta referencing a monitor that does not exist is a 400 and must
	// not advance the version.
	resp, body = postJSON(t, ts.URL+"/v1/tenants/acme/mutate", TenantMutateRequest{Deltas: []state.Delta{
		{Op: state.OpDropMonitor, MonitorID: "no-such-monitor"},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mutate: status %d: %s", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/tenants/acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d: %s", resp.StatusCode, body)
	}
	got := decodeTenant(t, body)
	if got.Version != 3 {
		t.Fatalf("get after rejected mutate: version %d, want 3", got.Version)
	}

	resp, body = getJSON(t, ts.URL+"/v1/tenants")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d: %s", resp.StatusCode, body)
	}
	var list TenantListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list.Tenants) != 1 || list.Tenants[0] != "acme" {
		t.Fatalf("list: %v", list.Tenants)
	}

	// /v1/stats carries the state counters.
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, body)
	}
	var stats statsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	// One committed batch (the rejected one does not count), plus the
	// creation solve and the batch's re-solve in the resolution counters.
	if stats.State == nil || stats.State.Mutations != 1 {
		t.Fatalf("stats.state = %+v, want 1 mutation", stats.State)
	}
	if total := stats.State.Shortcuts + stats.State.WarmHits + stats.State.FullResolves; total != 2 {
		t.Fatalf("stats.state = %+v, want 2 resolves", stats.State)
	}

	// Restart: close the store (the drain path), reopen the directory, and
	// require the replayed tenant to be bit-identical.
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, ts2 := newStateServer(t, dir)
	resp, body = getJSON(t, ts2.URL+"/v1/tenants/acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get after restart: status %d: %s", resp.StatusCode, body)
	}
	replayed := decodeTenant(t, body)
	if replayed.Version != got.Version {
		t.Fatalf("replayed version %d, want %d", replayed.Version, got.Version)
	}
	if replayed.Result == nil || got.Result == nil {
		t.Fatalf("missing result after restart")
	}
	if replayed.Result.Utility != got.Result.Utility ||
		replayed.Result.Cost != got.Result.Cost ||
		replayed.Result.BestBound != got.Result.BestBound {
		t.Fatalf("replayed result (%v, %v, %v), want (%v, %v, %v)",
			replayed.Result.Utility, replayed.Result.Cost, replayed.Result.BestBound,
			got.Result.Utility, got.Result.Cost, got.Result.BestBound)
	}
	if len(replayed.Result.Monitors) != len(got.Result.Monitors) {
		t.Fatalf("replayed %d monitors, want %d", len(replayed.Result.Monitors), len(got.Result.Monitors))
	}
	for i := range got.Result.Monitors {
		if replayed.Result.Monitors[i] != got.Result.Monitors[i] {
			t.Fatalf("replayed monitors %v, want %v", replayed.Result.Monitors, got.Result.Monitors)
		}
	}
}

// TestTenantRoutesWithoutStateDir checks every tenant route answers 503 when
// the server runs without a state directory.
func TestTenantRoutesWithoutStateDir(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, probe := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) { return getJSON(t, ts.URL+"/v1/tenants") },
		func() (*http.Response, []byte) { return getJSON(t, ts.URL+"/v1/tenants/acme") },
		func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/tenants/acme/mutate", TenantMutateRequest{})
		},
	} {
		resp, body := probe()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
		}
	}
}

// TestTenantInvalidID checks path traversal and malformed ids are rejected
// before touching the store.
func TestTenantInvalidID(t *testing.T) {
	_, ts := newStateServer(t, t.TempDir())
	for _, id := range []string{".hidden", "a b", "x%2Fy"} {
		resp, body := postJSON(t, ts.URL+"/v1/tenants/"+id, TenantCreateRequest{})
		// An escaped slash decodes into a path segment and lands on 404;
		// everything else must be rejected as a malformed id. Neither may
		// reach the store.
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("id %q: status %d, want 400/404: %s", id, resp.StatusCode, body)
		}
	}
}
