package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitQueued polls until n live waiters are queued for admission.
func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		q := a.queued
		a.mu.Unlock()
		if q == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d queued admissions", n)
}

// TestAdmissionWeightedRoundRobin drives the dispatcher directly: with one
// slot and weights {a: 2}, queued waiters a1..a4, b1, b2, c1 must be granted
// in the order a a b c a a b — two consecutive slots for the weight-2 tenant
// per round, one each for the others, FIFO within a tenant, with drained
// tenants leaving the rotation.
func TestAdmissionWeightedRoundRobin(t *testing.T) {
	adm := newAdmission(1, -1, map[string]int{"a": 2})

	// Occupy the only slot so every subsequent admit queues.
	if res, _ := adm.admit(context.Background(), "seed"); res != admitted {
		t.Fatalf("seed admit = %v, want admitted", res)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	// Enqueue one at a time so queue (and ring) order is deterministic.
	for i, tenant := range []string{"a", "a", "a", "a", "b", "b", "c"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			if res, _ := adm.admit(context.Background(), tenant); res != admitted {
				t.Errorf("admit(%s) = %v, want admitted", tenant, res)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			adm.release() // hand the slot to the next waiter
		}(tenant)
		waitQueued(t, adm, i+1)
	}

	adm.release() // free the seed slot; the chain dispatches everyone
	wg.Wait()

	want := []string{"a", "a", "b", "c", "a", "a", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

// TestAdmissionOverflow fills the admission queue and requires the next
// request to be rejected immediately with 429 and a Retry-After header,
// while the queued requests still complete once the slot frees up.
func TestAdmissionOverflow(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 2, CacheSize: -1, DisableCoalescing: true})
	gate := make(chan struct{})
	var solves atomic.Int64
	s.testSolveHook = func(kind string) {
		if solves.Add(1) == 1 {
			<-gate // pin the first solve so the others queue
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sys := testSystem(t, 12, 6)
	post := func(budget float64, done chan<- outcomePair) {
		b := budget
		resp, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys, Budget: &b})
		if done != nil {
			done <- outcomePair{resp.StatusCode, body}
		}
	}

	first := make(chan outcomePair, 1)
	go post(10, first)
	queued := make(chan outcomePair, 2)
	go post(20, queued)
	go post(30, queued)
	waitQueued(t, s.adm, 2)

	// Queue is at QueueDepth: this one must bounce straight off.
	b := 40.0
	resp, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys, Budget: &b})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, body %s; want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if out := <-queued; out.status != http.StatusOK {
			t.Fatalf("queued request %d: status %d, body %s", i, out.status, out.body)
		}
	}
	if out := <-first; out.status != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", out.status, out.body)
	}
	if st := s.stats.rejected.Load(); st != 1 {
		t.Fatalf("stats rejected = %d, want 1", st)
	}
}

// TestQueuedPastDeadline queues a request behind a pinned solve with a
// deadline too short to ever reach the front, and requires (a) a 408, (b)
// that the dead waiter never consumes a solve slot, and (c) that a later
// request sails through.
func TestQueuedPastDeadline(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 8, CacheSize: -1, DisableCoalescing: true})
	gate := make(chan struct{})
	var solves atomic.Int64
	s.testSolveHook = func(kind string) {
		if solves.Add(1) == 1 {
			<-gate
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sys := testSystem(t, 12, 6)
	first := make(chan outcomePair, 1)
	go func() {
		b := 10.0
		resp, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys, Budget: &b})
		first <- outcomePair{resp.StatusCode, body}
	}()
	// Wait for the first solve to be running (it holds the only slot).
	deadline := time.Now().Add(30 * time.Second)
	for solves.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if solves.Load() == 0 {
		t.Fatal("first solve never started")
	}

	// Second request queues; its 50ms deadline expires long before the slot
	// frees. It must get a 408 without ever reaching the solver.
	b2 := 20.0
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, Budget: &b2, DeadlineMillis: 50})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("queued-past-deadline status = %d, body %s; want 408", resp.StatusCode, body)
	}

	close(gate)
	if out := <-first; out.status != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", out.status, out.body)
	}
	// The expired waiter must not have burned the freed slot: a new request
	// is admitted and solves normally.
	b3 := 30.0
	resp, body = postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys, Budget: &b3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout request: status %d, body %s; want 200", resp.StatusCode, body)
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("underlying solves = %d, want 2 (the expired request must not solve)", got)
	}
	if st := s.stats.timeouts.Load(); st != 1 {
		t.Fatalf("stats timeouts = %d, want 1", st)
	}
}
