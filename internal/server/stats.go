package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	"secmon/internal/core"
	"secmon/internal/state"
)

// serveStats aggregates the serving-layer counters exposed by /v1/stats.
// Everything is monotonic since process start.
type serveStats struct {
	coalesced      atomic.Int64 // follower responses replayed from a leader's flight
	queued         atomic.Int64 // admissions that had to wait for a slot
	rejected       atomic.Int64 // 429s from a full admission queue
	timeouts       atomic.Int64 // 408s from a deadline expiring while queued or coalesced
	solves         atomic.Int64 // underlying optimizer runs (optimize + sweep)
	simulations    atomic.Int64 // campaign replays run by /v1/simulate
	cacheHits      atomic.Int64 // responses served verbatim from the full-response LRU
	sweepPointHits atomic.Int64 // sweep budget points assembled from the per-point LRU

	// Cumulative LP-kernel effort across every optimizer run the server
	// performed, for capacity planning; exposed under "kernel" in /v1/stats.
	etas             atomic.Int64
	refactorizations atomic.Int64
	ftUpdates        atomic.Int64
	boundFlips       atomic.Int64
	adaptiveRefacs   atomic.Int64
	kernelFallbacks  atomic.Int64

	mu      sync.Mutex
	tenants map[string]int64 // solve-slot dispatches per tenant
}

// recordKernel folds one solve's kernel counters into the cumulative totals.
func (st *serveStats) recordKernel(ks *core.SolveStats) {
	st.etas.Add(int64(ks.Etas))
	st.refactorizations.Add(int64(ks.Refactorizations))
	st.ftUpdates.Add(int64(ks.Updates))
	st.boundFlips.Add(int64(ks.BoundFlips))
	st.adaptiveRefacs.Add(int64(ks.AdaptiveRefactorizations))
	st.kernelFallbacks.Add(int64(ks.KernelFallbacks))
}

// kernelStatsBody is the "kernel" object of GET /v1/stats.
type kernelStatsBody struct {
	Etas                     int64 `json:"etas"`
	Refactorizations         int64 `json:"refactorizations"`
	Updates                  int64 `json:"updates"`
	BoundFlips               int64 `json:"boundFlips"`
	AdaptiveRefactorizations int64 `json:"adaptiveRefactorizations"`
	KernelFallbacks          int64 `json:"kernelFallbacks"`
}

func newServeStats() *serveStats {
	return &serveStats{tenants: make(map[string]int64)}
}

// dispatched records a solve-slot grant for the tenant ("" reported as
// "default", the shared pool every untagged request lands in).
func (st *serveStats) dispatched(tenant string) {
	if tenant == "" {
		tenant = "default"
	}
	st.mu.Lock()
	st.tenants[tenant]++
	st.mu.Unlock()
}

func (st *serveStats) tenantSnapshot() map[string]int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]int64, len(st.tenants))
	for k, v := range st.tenants {
		out[k] = v
	}
	return out
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	Coalesced      int64            `json:"coalesced"`
	Queued         int64            `json:"queued"`
	Rejected       int64            `json:"rejected"`
	Timeouts       int64            `json:"timeouts"`
	Solves         int64            `json:"solves"`
	Simulations    int64            `json:"simulations"`
	CacheHits      int64            `json:"cacheHits"`
	SweepPointHits int64            `json:"sweepPointHits"`
	InFlight       int64            `json:"inFlight"`
	CacheEntries   int              `json:"cacheEntries"`
	Tenants        map[string]int64 `json:"tenants"`
	// Kernel carries the cumulative LP-kernel effort counters across every
	// optimizer run (optimize and sweep); absent until the first solve.
	Kernel *kernelStatsBody `json:"kernel,omitempty"`
	// State carries the incremental-solve counters of the tenant state
	// store (replays, sensitivity shortcuts, warm hits, full re-solves);
	// absent when the server runs without a StateDir.
	State *state.Snapshot `json:"state,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	size, _, _ := s.cache.stats()
	var stateSnap *state.Snapshot
	if s.store != nil {
		snap := s.store.Stats()
		stateSnap = &snap
	}
	var kernel *kernelStatsBody
	if k := (kernelStatsBody{
		Etas:                     s.stats.etas.Load(),
		Refactorizations:         s.stats.refactorizations.Load(),
		Updates:                  s.stats.ftUpdates.Load(),
		BoundFlips:               s.stats.boundFlips.Load(),
		AdaptiveRefactorizations: s.stats.adaptiveRefacs.Load(),
		KernelFallbacks:          s.stats.kernelFallbacks.Load(),
	}); k != (kernelStatsBody{}) {
		kernel = &k
	}
	body, _ := json.Marshal(statsResponse{
		State:          stateSnap,
		Kernel:         kernel,
		Coalesced:      s.stats.coalesced.Load(),
		Queued:         s.stats.queued.Load(),
		Rejected:       s.stats.rejected.Load(),
		Timeouts:       s.stats.timeouts.Load(),
		Solves:         s.stats.solves.Load(),
		Simulations:    s.stats.simulations.Load(),
		CacheHits:      s.stats.cacheHits.Load(),
		SweepPointHits: s.stats.sweepPointHits.Load(),
		InFlight:       s.inFlight.Load(),
		CacheEntries:   size,
		Tenants:        s.stats.tenantSnapshot(),
	})
	writeJSON(w, http.StatusOK, "", body)
}
