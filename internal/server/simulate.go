package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"secmon/internal/campaign"
	"secmon/internal/model"
)

// SimulateRequest is the body of POST /v1/simulate: a seeded campaign replay
// of the system's attack library against a deployment, with optional
// convergence checking against the analytic metrics. Omitting the system
// selects the built-in enterprise Web service case study.
type SimulateRequest struct {
	System *model.System `json:"system,omitempty"`
	// Monitors is the deployment to validate; All deploys every monitor and
	// wins over Monitors. An empty deployment is legal (it detects nothing).
	Monitors []model.MonitorID `json:"monitors,omitempty"`
	All      bool              `json:"all,omitempty"`
	// Seed, Trials, Warmup, Workers, ArrivalRate, BenignRate, DwellMean,
	// ManifestProb, CaptureProb, LateralProb and Batches map onto
	// campaign.Config; zero values select its documented defaults. Replays
	// are deterministic in everything except Workers, which only changes
	// wall-clock time — the summary bytes are identical for any worker
	// count.
	Seed         int64   `json:"seed,omitempty"`
	Trials       int     `json:"trials,omitempty"`
	Warmup       int     `json:"warmup,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	ArrivalRate  float64 `json:"arrivalRate,omitempty"`
	BenignRate   float64 `json:"benignRate,omitempty"`
	DwellMean    float64 `json:"dwellMean,omitempty"`
	ManifestProb float64 `json:"manifestProb,omitempty"`
	CaptureProb  float64 `json:"captureProb,omitempty"`
	LateralProb  float64 `json:"lateralProb,omitempty"`
	Batches      int     `json:"batches,omitempty"`
	// Check additionally computes the analytic prediction and reports every
	// estimator that diverged from it beyond its confidence bounds.
	Check bool `json:"check,omitempty"`
	// Tenant tags the request for fair admission; see
	// OptimizeRequest.Tenant.
	Tenant         string `json:"tenant,omitempty"`
	DeadlineMillis int64  `json:"deadlineMillis,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	Summary *campaign.Summary `json:"summary"`
	// Analytic, Divergences and Converged are present only when the request
	// asked for a convergence check. Converged false with a populated
	// Divergences list means the replay measurably disagreed with the
	// analytic metrics — a reportable bug, not a statistical flake.
	Analytic       *campaign.Prediction  `json:"analytic,omitempty"`
	Divergences    []campaign.Divergence `json:"divergences,omitempty"`
	Converged      *bool                 `json:"converged,omitempty"`
	DeadlineMillis int64                 `json:"deadlineMillis"`
}

// simulateStatusFor maps campaign errors onto HTTP statuses.
func simulateStatusFor(err error) int {
	switch {
	case errors.Is(err, campaign.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, campaign.ErrNoAttacks):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := validTenant(req.Tenant); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Same keying discipline as /v1/optimize: the deadline and the tenant
	// stay out of the cache and coalescing key. A seeded replay is fully
	// deterministic, so any deadline variant of the same request from any
	// tenant can share one run and one cache entry.
	keyReq := req
	keyReq.DeadlineMillis = 0
	keyReq.Tenant = ""
	key, err := requestKey("simulate", &keyReq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, "hit", body)
		return
	}

	ctx, cancel, appliedMillis := s.solveContext(r, req.DeadlineMillis)
	defer cancel()
	s.coalesced(w, ctx, key, func() reply {
		return s.runSimulate(ctx, &req, key, appliedMillis)
	})
}

// runSimulate executes one /v1/simulate replay end to end — admission, the
// engine run, the optional convergence check and the cache fill — and
// returns the materialized response.
func (s *Server) runSimulate(ctx context.Context, req *SimulateRequest, key string, appliedMillis int64) reply {
	idx, err := indexFor(req.System)
	if err != nil {
		return errReply(http.StatusBadRequest, err)
	}
	d := model.NewDeployment()
	if req.All {
		d = model.NewDeployment(idx.MonitorIDs()...)
	} else {
		for _, id := range req.Monitors {
			if _, ok := idx.Monitor(id); !ok {
				return errReply(http.StatusBadRequest,
					fmt.Errorf("simulate: unknown monitor %q", id))
			}
			d.Add(id)
		}
	}
	cfg := campaign.Config{
		Seed:         req.Seed,
		Trials:       req.Trials,
		Warmup:       req.Warmup,
		Workers:      req.Workers,
		ArrivalRate:  req.ArrivalRate,
		BenignRate:   req.BenignRate,
		DwellMean:    req.DwellMean,
		ManifestProb: req.ManifestProb,
		CaptureProb:  req.CaptureProb,
		LateralProb:  req.LateralProb,
		Batches:      req.Batches,
	}

	release, rejected := s.admit(ctx, req.Tenant)
	if rejected != nil {
		return *rejected
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.stats.simulations.Add(1)

	sum, err := campaign.RunContext(ctx, idx, d, cfg)
	if err != nil {
		return errReply(simulateStatusFor(err), err)
	}
	resp := SimulateResponse{Summary: sum, DeadlineMillis: appliedMillis}
	if req.Check {
		pred, err := campaign.Analytic(idx, d, cfg)
		if err != nil {
			return errReply(simulateStatusFor(err), err)
		}
		div := pred.Check(sum)
		converged := len(div) == 0
		resp.Analytic = pred
		resp.Divergences = div
		resp.Converged = &converged
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return errReply(http.StatusInternalServerError, err)
	}
	// Seeded replays are deterministic and deadline-independent once they
	// complete, so every finished 200 is shareable and cacheable.
	s.cache.put(key, body)
	return reply{status: http.StatusOK, cache: "miss", body: body, shared: true}
}
