// Package server exposes the deployment optimizer as an HTTP JSON API: the
// `secmon serve` layer. Every solve runs under a per-request deadline and is
// interruptible anytime-style (see core.WithContext), so a slow exact solve
// degrades to the best incumbent with a reported optimality gap instead of
// holding the connection open. The serving path is built for many concurrent
// clients, not just one fast solve: identical finished requests are answered
// from an LRU cache keyed by a canonical request hash, identical in-flight
// requests are coalesced onto a single solve (singleflight), sweeps reuse
// previously proven budget points from a per-point cache and share solver
// state across the remaining points, and solve slots are dispensed by a
// per-tenant weighted round-robin admission queue with a bounded backlog
// (fast 429 + Retry-After on overflow). Shutdown drains in-flight solves
// before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"secmon/internal/casestudy"
	"secmon/internal/certify"
	"secmon/internal/core"
	"secmon/internal/lp"
	"secmon/internal/model"
	"secmon/internal/state"
)

// cacheHeader reports how a response was obtained: "hit" (served from the
// full-response cache), "partial" (a sweep assembled from at least one
// cached budget point), "coalesced" (replayed from a concurrent identical
// request's solve) or "miss" (computed fresh). Response bodies are identical
// whichever path produced them.
const cacheHeader = "Secmon-Cache"

// maxTenantLen bounds the tenant tag, which feeds per-tenant queues and
// counters.
const maxTenantLen = 64

// Config tunes a Server. The zero value selects the documented defaults.
type Config struct {
	// DefaultDeadline bounds solves whose request carries no deadlineMillis
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps request-supplied deadlines (default 5m).
	MaxDeadline time.Duration
	// MaxConcurrent bounds concurrently running solves; excess requests
	// queue for admission (default runtime.GOMAXPROCS(0)).
	MaxConcurrent int
	// QueueDepth bounds how many requests may wait for a solve slot across
	// all tenants; requests beyond it are rejected immediately with 429 and
	// a Retry-After header. 0 selects 16×MaxConcurrent; negative means
	// unbounded (every request waits, as the pre-admission-queue server
	// did).
	QueueDepth int
	// TenantWeights sets the weighted-round-robin dispatch weight per
	// tenant (default 1 each). A tenant with weight 2 receives two solve
	// slots for every one a weight-1 tenant gets, when both are queued.
	TenantWeights map[string]int
	// CacheSize is the LRU solution cache capacity in entries (default
	// 128; negative disables caching, including the sweep per-point cache).
	CacheSize int
	// ShutdownGrace bounds how long Shutdown waits for in-flight requests
	// to drain (default 30s).
	ShutdownGrace time.Duration
	// DisableCoalescing turns off in-flight request coalescing: every
	// request runs (and pays for) its own solve.
	DisableCoalescing bool
	// DisableSweepWarm makes /v1/sweep solve every budget point from cold
	// (core.ParetoSweepParallel) instead of the warm-shared sweep.
	DisableSweepWarm bool
	// DisableSweepPointCache turns off the per-budget-point sweep cache;
	// sweeps then only ever hit the full-response cache.
	DisableSweepPointCache bool
	// StateDir, when set, enables the stateful tenant surface
	// (/v1/tenants/...): per-tenant models mutated through typed deltas,
	// each committed to an append-only event log under this directory and
	// re-solved incrementally. Opening the directory replays every tenant
	// log found in it.
	StateDir string
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16 * c.MaxConcurrent
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 30 * time.Second
	}
	return c
}

// Server is the HTTP optimization service. Create one with New, mount
// Handler (or call Serve / ListenAndServe), and stop it by cancelling the
// context passed to Serve.
type Server struct {
	cfg      Config
	cache    *solutionCache
	adm      *admission
	flights  *flightGroup
	stats    *serveStats
	inFlight atomic.Int64
	mux      *http.ServeMux

	// store backs the /v1/tenants surface; nil when no StateDir was
	// configured or opening it failed (storeErr then says why, and every
	// tenant route answers 503 with that reason).
	store    *state.Store
	storeErr error

	// testSolveHook, when set, runs after admission and immediately before
	// each underlying optimizer run ("optimize" or "sweep"). Tests use it
	// to count and to block solves.
	testSolveHook func(kind string)
	// testDispatchHook, when set, runs after each solve-slot grant with the
	// request's tenant tag; tests use it to observe dispatch order.
	testDispatchHook func(tenant string)
	// testJoinHook, when set, runs after each flight join; tests use it to
	// know when every concurrent request has attached to a flight.
	testJoinHook func(leader bool)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newSolutionCache(cfg.CacheSize),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.TenantWeights),
		flights: newFlightGroup(),
		stats:   newServeStats(),
	}
	if cfg.StateDir != "" {
		s.store, s.storeErr = state.Open(cfg.StateDir)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.registerTenantRoutes()
	return s
}

// Close flushes and closes the tenant state store, if any. Serve calls it
// after the drain; servers mounted via Handler must call it themselves.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Handler returns the server's HTTP handler, for mounting under a custom
// http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and runs Serve on it.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ctx, l)
}

// Serve runs the HTTP service on l until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests (and
// their solves) get up to ShutdownGrace to finish, and only then does Serve
// return.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	// A server explicitly configured with a StateDir that failed to open
	// must not come up half-working: fail fast instead of answering 503 on
	// every tenant route. Servers mounted via Handler keep the degraded
	// behavior so embedders can decide for themselves.
	if s.storeErr != nil {
		return fmt.Errorf("server: open state store: %w", s.storeErr)
	}
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
		s.Close()
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after a clean Shutdown
	// The drain is complete: no handler can touch the store anymore, so
	// flush and close every tenant log before reporting a clean exit.
	if err := s.Close(); err != nil {
		return fmt.Errorf("server: close state store: %w", err)
	}
	return nil
}

// OptimizeRequest is the body of POST /v1/optimize. Omitting the system
// selects the built-in enterprise Web service case study. Exactly one of
// budget / budgetFraction is required unless minCost is set.
type OptimizeRequest struct {
	System *model.System `json:"system,omitempty"`
	// MinCost switches from budgeted utility maximization to cheapest
	// deployment meeting the coverage target.
	MinCost bool `json:"minCost,omitempty"`
	// Budget is the absolute spending cap for max-utility optimization.
	Budget *float64 `json:"budget,omitempty"`
	// BudgetFraction expresses the budget as a fraction of the system's
	// total monitor cost; it wins over Budget when both are set.
	BudgetFraction *float64 `json:"budgetFraction,omitempty"`
	// Target is the global coverage target for minCost (default 1).
	Target *float64 `json:"target,omitempty"`
	// Clamp clamps minCost targets to the achievable coverage.
	Clamp bool `json:"clamp,omitempty"`
	// Corroboration requires every counted evidence item to be produced by
	// at least k deployed monitors.
	Corroboration int `json:"corroboration,omitempty"`
	// Existing lists already-deployed monitors to keep (incremental mode).
	Existing []model.MonitorID `json:"existing,omitempty"`
	// Workers is the branch-and-bound worker count (0 = GOMAXPROCS,
	// 1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Kernel selects the LP simplex kernel: "sparse"/"lu" (the default,
	// sparse LU factorization with Forrest-Tomlin updates), "eta" (the
	// retained eta-file kernel) or "dense" (the tableau correctness
	// oracle). It participates in the solution cache key, so results
	// computed by different kernels never alias.
	Kernel string `json:"kernel,omitempty"`
	// Certify makes the solve emit a machine-checkable optimality
	// certificate, echoed in the result and verified server-side before the
	// response is cached. It participates in the cache key, so certified and
	// uncertified solves of the same problem never alias.
	Certify bool `json:"certify,omitempty"`
	// Decompose selects the graph-partitioned decomposition solver: ""/
	// "auto" (on above the optimizer's size threshold), "on" or "off". It
	// participates in the cache key, so decomposed and monolithic solves of
	// the same problem never alias.
	Decompose string `json:"decompose,omitempty"`
	// Tenant tags the request for fair admission: solve slots are dispensed
	// round-robin across tenants (weighted by Config.TenantWeights), FIFO
	// within one. Empty selects the shared default pool. The tenant does
	// NOT participate in the cache or coalescing keys — identical problems
	// from different tenants share one solve and one cache entry.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMillis bounds this solve; 0 selects the server default. The
	// server caps it at its configured maximum. Time spent queued for
	// admission counts against the deadline, so a queued request keeps its
	// end-to-end SLO.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// OptimizeResponse is the body of a successful POST /v1/optimize.
type OptimizeResponse struct {
	Result *core.Result `json:"result"`
	// DeadlineMillis is the deadline actually applied to the solve.
	DeadlineMillis int64 `json:"deadlineMillis"`
	// CertificateVerified is true when the request asked for certification
	// and the server re-verified the emitted certificate before replying.
	CertificateVerified bool `json:"certificateVerified,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a Pareto sweep of MaxUtility
// over a budget grid with the greedy and random baselines.
type SweepRequest struct {
	System *model.System `json:"system,omitempty"`
	// Steps is the number of budget steps between 0 and the total monitor
	// cost (default 10); Budgets, when set, overrides the grid entirely.
	Steps   int       `json:"steps,omitempty"`
	Budgets []float64 `json:"budgets,omitempty"`
	// Seed drives the random baseline (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers is the number of concurrent budget points (0 = GOMAXPROCS);
	// SolverWorkers is the branch-and-bound worker count per solve.
	Workers       int `json:"workers,omitempty"`
	SolverWorkers int `json:"solverWorkers,omitempty"`
	// Tenant tags the request for fair admission; see
	// OptimizeRequest.Tenant.
	Tenant         string `json:"tenant,omitempty"`
	DeadlineMillis int64  `json:"deadlineMillis,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Points         []core.SweepPoint `json:"points"`
	DeadlineMillis int64             `json:"deadlineMillis"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// reply is a fully materialized HTTP response: what a solve produced, or
// what a flight leader publishes for followers to replay. shared marks a
// proven, deadline-independent 200 that identical requests may reuse
// verbatim.
type reply struct {
	status     int
	cache      string // Secmon-Cache header value, "" to omit
	retryAfter string // Retry-After header value, "" to omit
	body       []byte
	shared     bool
}

func errReply(status int, err error) reply {
	body, _ := json.Marshal(errorResponse{Error: err.Error()})
	return reply{status: status, body: body}
}

func writeReply(w http.ResponseWriter, rep reply) {
	w.Header().Set("Content-Type", "application/json")
	if rep.cache != "" {
		w.Header().Set(cacheHeader, rep.cache)
	}
	if rep.retryAfter != "" {
		w.Header().Set("Retry-After", rep.retryAfter)
	}
	w.WriteHeader(rep.status)
	w.Write(rep.body)
}

func writeJSON(w http.ResponseWriter, status int, cache string, body []byte) {
	writeReply(w, reply{status: status, cache: cache, body: body})
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeReply(w, errReply(status, err))
}

// statusFor maps optimizer errors onto HTTP statuses: caller mistakes are
// 400/422, everything else is a 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrBadBudget),
		errors.Is(err, core.ErrBadTarget),
		errors.Is(err, core.ErrUnknownMonitor):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// solveContext derives the per-request solve context: the request deadline
// (capped at MaxDeadline, defaulting to DefaultDeadline) layered over the
// HTTP request context, so a client disconnect, the deadline, or time spent
// queued all count against the same budget and stop the branch-and-bound.
func (s *Server) solveContext(r *http.Request, deadlineMillis int64) (context.Context, context.CancelFunc, int64) {
	d := s.cfg.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, d.Milliseconds()
}

// coalesced serves one request through the flight group: the first request
// for a key becomes the leader and runs compute under its OWN deadline;
// identical concurrent requests follow, waiting under theirs. A follower's
// earlier deadline therefore never truncates the leader's solve — it only
// bounds how long that follower is willing to wait for it. Followers replay
// only shared (proven 200) results; after an error or a deadline-truncated
// leader they retry, each under its own deadline, the first retrier
// becoming the new leader.
func (s *Server) coalesced(w http.ResponseWriter, ctx context.Context, key string, compute func() reply) {
	if s.cfg.DisableCoalescing {
		writeReply(w, compute())
		return
	}
	for {
		f, leader := s.flights.join(key)
		if s.testJoinHook != nil {
			s.testJoinHook(leader)
		}
		if leader {
			published := false
			defer func() {
				if !published {
					// compute panicked: wake followers with a non-shared
					// error so they retry instead of hanging.
					s.flights.finish(key, f, http.StatusInternalServerError, "",
						errReply(http.StatusInternalServerError, errors.New("coalesced solve failed")).body, false)
				}
			}()
			rep := compute()
			s.flights.finish(key, f, rep.status, rep.cache, rep.body, rep.shared)
			published = true
			writeReply(w, rep)
			return
		}
		if !f.wait(ctx) {
			s.stats.timeouts.Add(1)
			writeError(w, http.StatusRequestTimeout,
				fmt.Errorf("deadline expired awaiting coalesced solve: %w", ctx.Err()))
			return
		}
		if f.shared {
			s.stats.coalesced.Add(1)
			writeReply(w, reply{status: f.status, cache: "coalesced", body: f.body})
			return
		}
		// Leader's outcome wasn't replayable; take another lap.
	}
}

// admit runs the fair-admission protocol for one solve, translating the
// outcome into a reply when the request cannot proceed. On success the
// returned release func must be called when the solve slot is no longer
// needed.
func (s *Server) admit(ctx context.Context, tenant string) (release func(), rejected *reply) {
	res, waited := s.adm.admit(ctx, tenant)
	if waited {
		s.stats.queued.Add(1)
	}
	switch res {
	case admitRejected:
		s.stats.rejected.Add(1)
		rep := errReply(http.StatusTooManyRequests, errors.New("admission queue full"))
		rep.retryAfter = "1"
		return nil, &rep
	case admitTimedOut:
		s.stats.timeouts.Add(1)
		rep := errReply(http.StatusRequestTimeout,
			fmt.Errorf("deadline expired while queued for a solve slot: %w", ctx.Err()))
		return nil, &rep
	}
	s.stats.dispatched(tenant)
	if s.testDispatchHook != nil {
		s.testDispatchHook(tenant)
	}
	return func() { s.adm.release() }, nil
}

// indexFor materializes the request's system (or the built-in case study).
func indexFor(sys *model.System) (*model.Index, error) {
	if sys == nil {
		return casestudy.BuildIndex()
	}
	return model.NewIndex(sys)
}

func validTenant(tenant string) error {
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("tenant tag exceeds %d bytes", maxTenantLen)
	}
	return nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := validTenant(req.Tenant); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// The cache and coalescing key deliberately excludes the deadline and
	// the tenant: only proven (deadline-independent) results are stored or
	// shared, so any deadline variant of the same problem from any tenant
	// can ride the same entry or in-flight solve.
	keyReq := req
	keyReq.DeadlineMillis = 0
	keyReq.Tenant = ""
	key, err := requestKey("optimize", &keyReq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, "hit", body)
		return
	}

	ctx, cancel, appliedMillis := s.solveContext(r, req.DeadlineMillis)
	defer cancel()
	s.coalesced(w, ctx, key, func() reply {
		return s.solveOptimize(ctx, &req, key, appliedMillis)
	})
}

// solveOptimize runs one /v1/optimize solve end to end — admission, solver
// construction, the solve itself, certificate verification and cache fill —
// and returns the materialized response.
func (s *Server) solveOptimize(ctx context.Context, req *OptimizeRequest, key string, appliedMillis int64) reply {
	idx, err := indexFor(req.System)
	if err != nil {
		return errReply(http.StatusBadRequest, err)
	}
	fixed := model.NewDeployment()
	for _, id := range req.Existing {
		fixed.Add(id)
	}
	opts := []core.Option{core.WithContext(ctx), core.WithWorkers(req.Workers)}
	switch req.Kernel {
	case "":
	case "sparse", "lu":
		opts = append(opts, core.WithKernel(lp.KernelLU))
	case "eta":
		opts = append(opts, core.WithKernel(lp.KernelEta))
	case "dense":
		opts = append(opts, core.WithDenseKernel())
	default:
		return errReply(http.StatusBadRequest,
			fmt.Errorf("optimize: unknown kernel %q (want sparse, lu, eta or dense)", req.Kernel))
	}
	if req.Clamp {
		opts = append(opts, core.WithClampToAchievable())
	}
	if req.Corroboration > 1 {
		opts = append(opts, core.WithCorroboration(req.Corroboration))
	}
	if req.Certify {
		opts = append(opts, core.WithCertificate())
	}
	switch req.Decompose {
	case "", "auto":
	case "on":
		opts = append(opts, core.WithDecomposition())
	case "off":
		opts = append(opts, core.WithoutDecomposition())
	default:
		return errReply(http.StatusBadRequest,
			fmt.Errorf("optimize: unknown decompose %q (want auto, on or off)", req.Decompose))
	}
	if !req.MinCost {
		if req.Budget == nil && req.BudgetFraction == nil {
			return errReply(http.StatusBadRequest,
				errors.New("optimize: provide budget or budgetFraction"))
		}
	}

	release, rejected := s.admit(ctx, req.Tenant)
	if rejected != nil {
		return *rejected
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	if s.testSolveHook != nil {
		s.testSolveHook("optimize")
	}
	s.stats.solves.Add(1)

	opt := core.NewOptimizer(idx, opts...)
	var res *core.Result
	if req.MinCost {
		target := 1.0
		if req.Target != nil {
			target = *req.Target
		}
		res, err = opt.MinCostIncremental(core.CoverageTargets{Global: target}, fixed)
	} else {
		budget := -1.0
		if req.Budget != nil {
			budget = *req.Budget
		}
		if req.BudgetFraction != nil {
			budget = idx.System().TotalMonitorCost() * *req.BudgetFraction
		}
		res, err = opt.MaxUtilityIncremental(budget, fixed)
	}
	if err != nil {
		return errReply(statusFor(err), err)
	}
	s.stats.recordKernel(&res.Stats)

	// A certified response is never cached (or served) without the server
	// itself re-checking the certificate: the cache must only ever hold
	// proofs that passed the independent verifier.
	verified := false
	if req.Certify && res.Certificate != nil {
		if _, err := certify.Verify(res.Certificate); err != nil {
			return errReply(http.StatusInternalServerError,
				fmt.Errorf("optimize: certificate failed verification: %w", err))
		}
		verified = true
	}

	body, err := json.Marshal(OptimizeResponse{
		Result:              res,
		DeadlineMillis:      appliedMillis,
		CertificateVerified: verified,
	})
	if err != nil {
		return errReply(http.StatusInternalServerError, err)
	}
	shared := res.Proven && (!req.Certify || verified)
	if shared {
		s.cache.put(key, body)
	}
	return reply{status: http.StatusOK, cache: "miss", body: body, shared: shared}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := validTenant(req.Tenant); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	keyReq := req
	keyReq.DeadlineMillis = 0
	keyReq.Tenant = ""
	key, err := requestKey("sweep", &keyReq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, "hit", body)
		return
	}

	ctx, cancel, appliedMillis := s.solveContext(r, req.DeadlineMillis)
	defer cancel()
	s.coalesced(w, ctx, key, func() reply {
		return s.solveSweep(ctx, &req, key, appliedMillis)
	})
}

// solveSweep runs one /v1/sweep end to end. The request hash work is
// hoisted: the full-response key was computed once by the handler, and the
// per-point cache keys share one hashed prefix with only the budget bits
// varying per point. Budget points already proven by an earlier sweep are
// taken from the per-point cache; only the remaining points are solved
// (warm-shared across neighboring budgets unless disabled), and the merged
// curve goes through the same stabilization pass a fresh sweep runs, so the
// response bytes are identical to an uncached solve.
func (s *Server) solveSweep(ctx context.Context, req *SweepRequest, key string, appliedMillis int64) reply {
	idx, err := indexFor(req.System)
	if err != nil {
		return errReply(http.StatusBadRequest, err)
	}
	budgets := req.Budgets
	if len(budgets) == 0 {
		steps := req.Steps
		if steps <= 0 {
			steps = 10
		}
		budgets = core.BudgetGrid(idx, steps)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	solverWorkers := req.SolverWorkers
	if solverWorkers == 0 {
		solverWorkers = 1
	}

	points := make([]core.SweepPoint, len(budgets))
	havePoint := make([]bool, len(budgets))
	missing := 0
	pointHits := 0
	usePointCache := s.cfg.CacheSize > 0 && !s.cfg.DisableSweepPointCache
	var prefix string
	if usePointCache {
		prefix, err = sweepPointPrefix(req)
		if err != nil {
			usePointCache = false
		}
	}
	for i, b := range budgets {
		if usePointCache {
			if body, ok := s.cache.get(sweepPointKey(prefix, b)); ok {
				if p, ok := decodeSweepPoint(body); ok {
					points[i] = p
					havePoint[i] = true
					pointHits++
					continue
				}
			}
		}
		missing++
	}
	if pointHits > 0 {
		s.stats.sweepPointHits.Add(int64(pointHits))
	}

	opt := core.NewOptimizer(idx, core.WithContext(ctx), core.WithWorkers(solverWorkers))
	if missing > 0 {
		release, rejected := s.admit(ctx, req.Tenant)
		if rejected != nil {
			return *rejected
		}
		defer release()
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		if s.testSolveHook != nil {
			s.testSolveHook("sweep")
		}
		s.stats.solves.Add(1)

		missingBudgets := make([]float64, 0, missing)
		for i, have := range havePoint {
			if !have {
				missingBudgets = append(missingBudgets, budgets[i])
			}
		}
		var solved []core.SweepPoint
		if s.cfg.DisableSweepWarm {
			solved, err = opt.ParetoSweepParallel(missingBudgets, seed, req.Workers)
		} else {
			solved, err = opt.ParetoSweepWarm(missingBudgets, seed, req.Workers)
		}
		if err != nil {
			return errReply(statusFor(err), err)
		}
		for i := range solved {
			if p := solved[i].Optimal; p != nil {
				s.stats.recordKernel(&p.Stats)
			}
		}
		j := 0
		for i, have := range havePoint {
			if !have {
				points[i] = solved[j]
				j++
			}
		}
	}

	// The per-point cache holds raw, budget-local results; the merged curve
	// must go through the same canonicalization a fresh full sweep gets.
	opt.StabilizeSweep(points)

	body, err := json.Marshal(SweepResponse{Points: points, DeadlineMillis: appliedMillis})
	if err != nil {
		return errReply(http.StatusInternalServerError, err)
	}
	allProven := true
	for _, p := range points {
		if p.Optimal == nil || !p.Optimal.Proven {
			allProven = false
			break
		}
	}
	if allProven {
		s.cache.put(key, body)
	}
	if usePointCache {
		for i, p := range points {
			// Only freshly solved, budget-local points enter the per-point
			// cache: a Restated deployment is a function of this request's
			// whole budget grid and would leak into differently shaped
			// sweeps.
			if havePoint[i] || p.Optimal == nil || !p.Optimal.Proven || p.Optimal.Restated {
				continue
			}
			if pb, err := json.Marshal(p); err == nil {
				s.cache.put(sweepPointKey(prefix, budgets[i]), pb)
			}
		}
	}
	header := "miss"
	if pointHits > 0 {
		header = "partial"
	}
	return reply{status: http.StatusOK, cache: header, body: body, shared: allProven}
}

// healthResponse is the body of GET /v1/healthz.
type healthResponse struct {
	Status      string `json:"status"`
	InFlight    int64  `json:"inFlight"`
	CacheSize   int    `json:"cacheSize"`
	CacheHits   int    `json:"cacheHits"`
	CacheMisses int    `json:"cacheMisses"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	size, hits, misses := s.cache.stats()
	body, _ := json.Marshal(healthResponse{
		Status:      "ok",
		InFlight:    s.inFlight.Load(),
		CacheSize:   size,
		CacheHits:   hits,
		CacheMisses: misses,
	})
	writeJSON(w, http.StatusOK, "", body)
}
