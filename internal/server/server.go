// Package server exposes the deployment optimizer as an HTTP JSON API: the
// `secmon serve` layer. Every solve runs under a per-request deadline and is
// interruptible anytime-style (see core.WithContext), so a slow exact solve
// degrades to the best incumbent with a reported optimality gap instead of
// holding the connection open. Identical requests are answered from an LRU
// cache keyed by a canonical hash of the request (only proven, i.e.
// deadline-independent, results are cached), and shutdown drains in-flight
// solves before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"secmon/internal/casestudy"
	"secmon/internal/certify"
	"secmon/internal/core"
	"secmon/internal/lp"
	"secmon/internal/model"
)

// cacheHeader reports whether a response was served from the solution
// cache ("hit") or computed fresh ("miss"); response bodies are identical
// either way.
const cacheHeader = "Secmon-Cache"

// Config tunes a Server. The zero value selects the documented defaults.
type Config struct {
	// DefaultDeadline bounds solves whose request carries no deadlineMillis
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps request-supplied deadlines (default 5m).
	MaxDeadline time.Duration
	// MaxConcurrent bounds concurrently running solves; excess requests
	// wait their turn, giving up when their deadline expires first
	// (default runtime.GOMAXPROCS(0)).
	MaxConcurrent int
	// CacheSize is the LRU solution cache capacity in entries (default
	// 128; negative disables caching).
	CacheSize int
	// ShutdownGrace bounds how long Shutdown waits for in-flight requests
	// to drain (default 30s).
	ShutdownGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 30 * time.Second
	}
	return c
}

// Server is the HTTP optimization service. Create one with New, mount
// Handler (or call Serve / ListenAndServe), and stop it by cancelling the
// context passed to Serve.
type Server struct {
	cfg      Config
	cache    *solutionCache
	sem      chan struct{}
	inFlight atomic.Int64
	mux      *http.ServeMux
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newSolutionCache(cfg.CacheSize),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler, for mounting under a custom
// http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and runs Serve on it.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ctx, l)
}

// Serve runs the HTTP service on l until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests (and
// their solves) get up to ShutdownGrace to finish, and only then does Serve
// return.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after a clean Shutdown
	return nil
}

// OptimizeRequest is the body of POST /v1/optimize. Omitting the system
// selects the built-in enterprise Web service case study. Exactly one of
// budget / budgetFraction is required unless minCost is set.
type OptimizeRequest struct {
	System *model.System `json:"system,omitempty"`
	// MinCost switches from budgeted utility maximization to cheapest
	// deployment meeting the coverage target.
	MinCost bool `json:"minCost,omitempty"`
	// Budget is the absolute spending cap for max-utility optimization.
	Budget *float64 `json:"budget,omitempty"`
	// BudgetFraction expresses the budget as a fraction of the system's
	// total monitor cost; it wins over Budget when both are set.
	BudgetFraction *float64 `json:"budgetFraction,omitempty"`
	// Target is the global coverage target for minCost (default 1).
	Target *float64 `json:"target,omitempty"`
	// Clamp clamps minCost targets to the achievable coverage.
	Clamp bool `json:"clamp,omitempty"`
	// Corroboration requires every counted evidence item to be produced by
	// at least k deployed monitors.
	Corroboration int `json:"corroboration,omitempty"`
	// Existing lists already-deployed monitors to keep (incremental mode).
	Existing []model.MonitorID `json:"existing,omitempty"`
	// Workers is the branch-and-bound worker count (0 = GOMAXPROCS,
	// 1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Kernel selects the LP simplex kernel: "sparse" (the default) or
	// "dense" (the correctness oracle). It participates in the solution
	// cache key, so results computed by different kernels never alias.
	Kernel string `json:"kernel,omitempty"`
	// Certify makes the solve emit a machine-checkable optimality
	// certificate, echoed in the result and verified server-side before the
	// response is cached. It participates in the cache key, so certified and
	// uncertified solves of the same problem never alias.
	Certify bool `json:"certify,omitempty"`
	// Decompose selects the graph-partitioned decomposition solver: ""/
	// "auto" (on above the optimizer's size threshold), "on" or "off". It
	// participates in the cache key, so decomposed and monolithic solves of
	// the same problem never alias.
	Decompose string `json:"decompose,omitempty"`
	// DeadlineMillis bounds this solve; 0 selects the server default. The
	// server caps it at its configured maximum.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// OptimizeResponse is the body of a successful POST /v1/optimize.
type OptimizeResponse struct {
	Result *core.Result `json:"result"`
	// DeadlineMillis is the deadline actually applied to the solve.
	DeadlineMillis int64 `json:"deadlineMillis"`
	// CertificateVerified is true when the request asked for certification
	// and the server re-verified the emitted certificate before replying.
	CertificateVerified bool `json:"certificateVerified,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a Pareto sweep of MaxUtility
// over a budget grid with the greedy and random baselines.
type SweepRequest struct {
	System *model.System `json:"system,omitempty"`
	// Steps is the number of budget steps between 0 and the total monitor
	// cost (default 10); Budgets, when set, overrides the grid entirely.
	Steps   int       `json:"steps,omitempty"`
	Budgets []float64 `json:"budgets,omitempty"`
	// Seed drives the random baseline (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers is the number of concurrent budget points (0 = GOMAXPROCS);
	// SolverWorkers is the branch-and-bound worker count per solve.
	Workers        int   `json:"workers,omitempty"`
	SolverWorkers  int   `json:"solverWorkers,omitempty"`
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Points         []core.SweepPoint `json:"points"`
	DeadlineMillis int64             `json:"deadlineMillis"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, cache string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if cache != "" {
		w.Header().Set(cacheHeader, cache)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body, _ := json.Marshal(errorResponse{Error: err.Error()})
	writeJSON(w, status, "", body)
}

// statusFor maps optimizer errors onto HTTP statuses: caller mistakes are
// 400/422, everything else is a 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrBadBudget),
		errors.Is(err, core.ErrBadTarget),
		errors.Is(err, core.ErrUnknownMonitor):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// solveContext derives the per-request solve context: the request deadline
// (capped at MaxDeadline, defaulting to DefaultDeadline) layered over the
// HTTP request context, so both a client disconnect and the deadline stop
// the branch-and-bound.
func (s *Server) solveContext(r *http.Request, deadlineMillis int64) (context.Context, context.CancelFunc, int64) {
	d := s.cfg.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, d.Milliseconds()
}

// acquire claims a solve slot, waiting until one frees up or the context
// expires. It returns false (and replies 503) when the wait is abandoned.
func (s *Server) acquire(ctx context.Context, w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server saturated: %w", ctx.Err()))
		return false
	}
}

func (s *Server) release() { <-s.sem }

// indexFor materializes the request's system (or the built-in case study).
func indexFor(sys *model.System) (*model.Index, error) {
	if sys == nil {
		return casestudy.BuildIndex()
	}
	return model.NewIndex(sys)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodeRequest(w, r, &req) {
		return
	}

	// The cache key deliberately excludes the deadline: only proven
	// (deadline-independent) results are stored, so any deadline variant
	// of the same problem can be served from the same entry.
	keyReq := req
	keyReq.DeadlineMillis = 0
	key, err := requestKey("optimize", &keyReq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.get(key); ok {
		writeJSON(w, http.StatusOK, "hit", body)
		return
	}

	ctx, cancel, appliedMillis := s.solveContext(r, req.DeadlineMillis)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	idx, err := indexFor(req.System)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fixed := model.NewDeployment()
	for _, id := range req.Existing {
		fixed.Add(id)
	}

	opts := []core.Option{core.WithContext(ctx), core.WithWorkers(req.Workers)}
	switch req.Kernel {
	case "":
	case "sparse":
		opts = append(opts, core.WithKernel(lp.KernelSparse))
	case "dense":
		opts = append(opts, core.WithDenseKernel())
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("optimize: unknown kernel %q (want sparse or dense)", req.Kernel))
		return
	}
	if req.Clamp {
		opts = append(opts, core.WithClampToAchievable())
	}
	if req.Corroboration > 1 {
		opts = append(opts, core.WithCorroboration(req.Corroboration))
	}
	if req.Certify {
		opts = append(opts, core.WithCertificate())
	}
	switch req.Decompose {
	case "", "auto":
	case "on":
		opts = append(opts, core.WithDecomposition())
	case "off":
		opts = append(opts, core.WithoutDecomposition())
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("optimize: unknown decompose %q (want auto, on or off)", req.Decompose))
		return
	}
	opt := core.NewOptimizer(idx, opts...)

	var res *core.Result
	if req.MinCost {
		target := 1.0
		if req.Target != nil {
			target = *req.Target
		}
		res, err = opt.MinCostIncremental(core.CoverageTargets{Global: target}, fixed)
	} else {
		budget := -1.0
		if req.Budget != nil {
			budget = *req.Budget
		}
		if req.BudgetFraction != nil {
			budget = idx.System().TotalMonitorCost() * *req.BudgetFraction
		}
		if budget < 0 {
			writeError(w, http.StatusBadRequest,
				errors.New("optimize: provide budget or budgetFraction"))
			return
		}
		res, err = opt.MaxUtilityIncremental(budget, fixed)
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	// A certified response is never cached (or served) without the server
	// itself re-checking the certificate: the cache must only ever hold
	// proofs that passed the independent verifier.
	verified := false
	if req.Certify && res.Certificate != nil {
		if _, err := certify.Verify(res.Certificate); err != nil {
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("optimize: certificate failed verification: %w", err))
			return
		}
		verified = true
	}

	body, err := json.Marshal(OptimizeResponse{
		Result:              res,
		DeadlineMillis:      appliedMillis,
		CertificateVerified: verified,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if res.Proven && (!req.Certify || verified) {
		s.cache.put(key, body)
	}
	writeJSON(w, http.StatusOK, "miss", body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeRequest(w, r, &req) {
		return
	}

	keyReq := req
	keyReq.DeadlineMillis = 0
	key, err := requestKey("sweep", &keyReq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.get(key); ok {
		writeJSON(w, http.StatusOK, "hit", body)
		return
	}

	ctx, cancel, appliedMillis := s.solveContext(r, req.DeadlineMillis)
	defer cancel()
	if !s.acquire(ctx, w) {
		return
	}
	defer s.release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	idx, err := indexFor(req.System)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	budgets := req.Budgets
	if len(budgets) == 0 {
		steps := req.Steps
		if steps <= 0 {
			steps = 10
		}
		budgets = core.BudgetGrid(idx, steps)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	solverWorkers := req.SolverWorkers
	if solverWorkers == 0 {
		solverWorkers = 1
	}

	opt := core.NewOptimizer(idx, core.WithContext(ctx), core.WithWorkers(solverWorkers))
	points, err := opt.ParetoSweepParallel(budgets, seed, req.Workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	body, err := json.Marshal(SweepResponse{Points: points, DeadlineMillis: appliedMillis})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	allProven := true
	for _, p := range points {
		if p.Optimal == nil || !p.Optimal.Proven {
			allProven = false
			break
		}
	}
	if allProven {
		s.cache.put(key, body)
	}
	writeJSON(w, http.StatusOK, "miss", body)
}

// healthResponse is the body of GET /v1/healthz.
type healthResponse struct {
	Status      string `json:"status"`
	InFlight    int64  `json:"inFlight"`
	CacheSize   int    `json:"cacheSize"`
	CacheHits   int    `json:"cacheHits"`
	CacheMisses int    `json:"cacheMisses"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	size, hits, misses := s.cache.stats()
	body, _ := json.Marshal(healthResponse{
		Status:      "ok",
		InFlight:    s.inFlight.Load(),
		CacheSize:   size,
		CacheHits:   hits,
		CacheMisses: misses,
	})
	writeJSON(w, http.StatusOK, "", body)
}
