package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"secmon/internal/core"
	"secmon/internal/model"
	"secmon/internal/state"
)

// The tenant surface exposes internal/state over HTTP: each tenant is a live
// model mutated through typed deltas, every batch committed to that tenant's
// append-only event log before it takes effect, and re-solved incrementally.
// Routes (all JSON):
//
//	POST /v1/tenants/{id}         create a tenant from {system, spec}
//	GET  /v1/tenants/{id}         current version, spec and last result
//	POST /v1/tenants/{id}/mutate  apply {deltas: [...]} as one atomic batch
//	GET  /v1/tenants              list tenant ids
//
// The surface exists only when the server was configured with a StateDir;
// without one every tenant route answers 503.

// TenantCreateRequest is the body of POST /v1/tenants/{id}.
type TenantCreateRequest struct {
	System *model.System   `json:"system"`
	Spec   state.SolveSpec `json:"spec"`
}

// TenantMutateRequest is the body of POST /v1/tenants/{id}/mutate.
type TenantMutateRequest struct {
	Deltas []state.Delta `json:"deltas"`
}

// TenantResponse is the body of tenant creation, mutation and GET replies:
// the tenant's log version (sequence number of the last committed record)
// and the solve result current at that version.
type TenantResponse struct {
	ID      string          `json:"id"`
	Version uint64          `json:"version"`
	Spec    state.SolveSpec `json:"spec"`
	Result  *core.Result    `json:"result"`
}

// TenantListResponse is the body of GET /v1/tenants.
type TenantListResponse struct {
	Tenants []string `json:"tenants"`
}

func (s *Server) registerTenantRoutes() {
	s.mux.HandleFunc("/v1/tenants", s.handleTenantList)
	s.mux.HandleFunc("/v1/tenants/", s.handleTenant)
}

// tenantStatusFor maps state-layer errors onto HTTP statuses: caller
// mistakes are 400, duplicate tenants 409, unreachable covering targets 422,
// everything else falls through to the optimizer mapping.
func tenantStatusFor(err error) int {
	switch {
	case errors.Is(err, state.ErrTenantExists):
		return http.StatusConflict
	case errors.Is(err, state.ErrInvalid):
		return http.StatusBadRequest
	default:
		return statusFor(err)
	}
}

// requireStore resolves the state store or answers the request with the
// reason there is none.
func (s *Server) requireStore(w http.ResponseWriter) *state.Store {
	if s.store != nil {
		return s.store
	}
	err := s.storeErr
	if err == nil {
		err = errors.New("no state directory configured (start with -state-dir)")
	}
	writeError(w, http.StatusServiceUnavailable, err)
	return nil
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	store := s.requireStore(w)
	if store == nil {
		return
	}
	body, _ := json.Marshal(TenantListResponse{Tenants: store.Tenants()})
	writeJSON(w, http.StatusOK, "", body)
}

// handleTenant dispatches /v1/tenants/{id} and /v1/tenants/{id}/mutate.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	id, action, _ := strings.Cut(rest, "/")
	if !state.ValidTenantID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid tenant id %q", id))
		return
	}
	switch action {
	case "":
		switch r.Method {
		case http.MethodPost:
			s.handleTenantCreate(w, r, id)
		case http.MethodGet:
			s.handleTenantGet(w, id)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, errors.New("GET or POST required"))
		}
	case "mutate":
		s.handleTenantMutate(w, r, id)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown tenant action %q", action))
	}
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request, id string) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	var req TenantCreateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if req.System == nil {
		writeError(w, http.StatusBadRequest, errors.New("missing system"))
		return
	}
	tn, err := store.Create(id, req.System, req.Spec)
	if err != nil {
		writeError(w, tenantStatusFor(err), err)
		return
	}
	writeTenant(w, http.StatusCreated, tn)
}

func (s *Server) handleTenantGet(w http.ResponseWriter, id string) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	tn, ok := store.Tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", id))
		return
	}
	writeTenant(w, http.StatusOK, tn)
}

func (s *Server) handleTenantMutate(w http.ResponseWriter, r *http.Request, id string) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	var req TenantMutateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	tn, ok := store.Tenant(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", id))
		return
	}
	if _, err := tn.Mutate(req.Deltas); err != nil {
		writeError(w, tenantStatusFor(err), err)
		return
	}
	writeTenant(w, http.StatusOK, tn)
}

func writeTenant(w http.ResponseWriter, status int, tn *state.Tenant) {
	body, _ := json.Marshal(TenantResponse{
		ID:      tn.ID(),
		Version: tn.Version(),
		Spec:    tn.Spec(),
		Result:  tn.Last(),
	})
	writeJSON(w, status, "", body)
}
