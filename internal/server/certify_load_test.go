package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"secmon/internal/certify"
)

func TestOptimizeCertify(t *testing.T) {
	ts := newTestServer(t, Config{})
	sys := testSystem(t, 12, 6)
	frac := 0.4
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac, Certify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	out := decodeOptimize(t, body)
	if !out.CertificateVerified {
		t.Fatalf("certificateVerified false: %s", body)
	}
	if out.Result.Certificate == nil {
		t.Fatalf("no certificate echoed: %s", body)
	}
	// The echoed certificate must itself verify client-side: the response
	// carries the full proof, not just the server's word for it.
	if _, err := certify.Verify(out.Result.Certificate); err != nil {
		t.Fatalf("echoed certificate rejected: %v", err)
	}

	// Identical certified request: served from cache, proof still attached.
	resp, body = postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac, Certify: true})
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Fatalf("second certified request cache header %q, want hit", got)
	}
	if out := decodeOptimize(t, body); !out.CertificateVerified || out.Result.Certificate == nil {
		t.Fatalf("cached certified response lost its proof: %s", body)
	}

	// An uncertified request of the same problem must NOT alias the
	// certified cache entry.
	resp, body = postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac})
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("uncertified request aliased the certified entry (header %q)", got)
	}
	if out := decodeOptimize(t, body); out.Result.Certificate != nil || out.CertificateVerified {
		t.Fatalf("uncertified response carries certificate state: %s", body)
	}
}

// TestOptimizeCertifiedLoad hammers /v1/optimize concurrently with mixed
// kernels, worker counts, certification, and deadlines over a handful of
// distinct systems, exercising the proven-result LRU under contention. Run
// under -race via `make race-solver`.
func TestOptimizeCertifiedLoad(t *testing.T) {
	ts := newTestServer(t, Config{MaxConcurrent: 4, CacheSize: 8})
	systems := []int{8, 10, 12}
	kernels := []string{"", "sparse", "dense"}

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys := testSystem(t, systems[c%len(systems)], 6)
			frac := 0.3 + 0.1*float64(c%3)
			req := OptimizeRequest{
				System:         sys,
				BudgetFraction: &frac,
				Certify:        c%2 == 0,
				Kernel:         kernels[c%len(kernels)],
				Workers:        1 + 3*(c%2),
				DeadlineMillis: int64(2000 + 500*(c%3)),
			}
			resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
				return
			}
			out := decodeOptimize(t, body)
			if out.Result == nil {
				errs <- fmt.Errorf("client %d: empty result", c)
				return
			}
			if req.Certify && out.Result.Proven {
				if !out.CertificateVerified || out.Result.Certificate == nil {
					errs <- fmt.Errorf("client %d: proven certified result lacks a verified proof", c)
					return
				}
				if _, err := certify.Verify(out.Result.Certificate); err != nil {
					errs <- fmt.Errorf("client %d: certificate rejected: %v", c, err)
					return
				}
			}
			if !req.Certify && out.Result.Certificate != nil {
				errs <- fmt.Errorf("client %d: uncertified request got a certificate", c)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
