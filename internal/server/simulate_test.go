package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"secmon/internal/model"
)

func decodeSimulate(t *testing.T, body []byte) SimulateResponse {
	t.Helper()
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode response %s: %v", body, err)
	}
	return out
}

func TestSimulateEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SimulateRequest{All: true, Seed: 7, Trials: 400, Warmup: 40, BenignRate: 10, Check: true}

	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("first request cache header %q, want miss", got)
	}
	out := decodeSimulate(t, body)
	if out.Summary == nil {
		t.Fatal("response missing summary")
	}
	if out.Summary.Measured != 360 || out.Summary.Campaigns != 400 {
		t.Errorf("measured/campaigns = %d/%d, want 360/400",
			out.Summary.Measured, out.Summary.Campaigns)
	}
	if out.Summary.DetectionRate.Mean <= 0 {
		t.Errorf("full deployment detection %v, want > 0", out.Summary.DetectionRate.Mean)
	}
	if out.Analytic == nil || out.Converged == nil {
		t.Fatal("check requested but analytic/converged missing")
	}
	if !*out.Converged || len(out.Divergences) != 0 {
		t.Errorf("full-deployment replay diverged: %v", out.Divergences)
	}

	// Identical request: served verbatim from the cache.
	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached status = %d, body %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached response bytes differ from the original")
	}

	// The deadline stays out of the cache key: a deadline variant of the
	// same replay still hits.
	req.DeadlineMillis = 60_000
	resp3, _ := postJSON(t, ts.URL+"/v1/simulate", req)
	if got := resp3.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("deadline-variant cache header %q, want hit", got)
	}
}

func TestSimulateWorkerInvarianceOverHTTP(t *testing.T) {
	ts := newTestServer(t, Config{})
	base := SimulateRequest{All: true, Seed: 3, Trials: 300, BenignRate: 5, LateralProb: 0.2}

	req1 := base
	req1.Workers = 1
	_, body1 := postJSON(t, ts.URL+"/v1/simulate", req1)
	req4 := base
	req4.Workers = 4
	_, body4 := postJSON(t, ts.URL+"/v1/simulate", req4)

	sum1 := decodeSimulate(t, body1).Summary
	sum4 := decodeSimulate(t, body4).Summary
	if sum1 == nil || sum4 == nil {
		t.Fatal("missing summary")
	}
	if sum1.DetectionRate != sum4.DetectionRate || sum1.Events != sum4.Events ||
		sum1.AttackAlerts != sum4.AttackAlerts || sum1.BenignAlerts != sum4.BenignAlerts {
		t.Errorf("workers=1 and workers=4 summaries differ:\n%+v\n%+v", sum1, sum4)
	}
}

func TestSimulateRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		req  SimulateRequest
		want int
	}{
		"unknown monitor": {SimulateRequest{Monitors: []model.MonitorID{"no-such-monitor"}}, http.StatusBadRequest},
		"bad config":      {SimulateRequest{All: true, Trials: -5}, http.StatusBadRequest},
		"bad probability": {SimulateRequest{All: true, ManifestProb: 2}, http.StatusBadRequest},
		"long tenant":     {SimulateRequest{All: true, Tenant: string(make([]byte, 65))}, http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/simulate", tc.req)
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
		})
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestSimulateCountsInStats(t *testing.T) {
	ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{All: true, Seed: 1, Trials: 50})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Simulations != 1 {
		t.Errorf("simulations counter = %d, want 1", stats.Simulations)
	}
	if stats.Solves != 0 {
		t.Errorf("solves counter = %d, want 0 (replays are not solves)", stats.Solves)
	}
}
