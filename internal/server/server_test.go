package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"secmon/internal/model"
	"secmon/internal/synth"
)

func testSystem(t *testing.T, monitors, attacks int) *model.System {
	t.Helper()
	sys, err := synth.Generate(synth.Config{Seed: 11, Monitors: monitors, Attacks: attacks})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return sys
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, out
}

func decodeOptimize(t *testing.T, body []byte) OptimizeResponse {
	t.Helper()
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode response %s: %v", body, err)
	}
	return out
}

func TestOptimizeEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	sys := testSystem(t, 12, 6)
	frac := 0.4
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("cache header = %q, want miss", got)
	}
	out := decodeOptimize(t, body)
	if out.Result == nil || !out.Result.Proven {
		t.Fatalf("expected a proven result, got %s", body)
	}
	if out.Result.Cost > sys.TotalMonitorCost()*frac+1e-9 {
		t.Errorf("cost %v exceeds budget", out.Result.Cost)
	}
}

func TestOptimizeDefaultSystem(t *testing.T) {
	// Omitting the system selects the built-in case study.
	ts := newTestServer(t, Config{})
	frac := 0.5
	resp, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{BudgetFraction: &frac})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if out := decodeOptimize(t, body); len(out.Result.Monitors) == 0 {
		t.Error("case-study optimize returned an empty deployment")
	}
}

func TestOptimizeCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	sys := testSystem(t, 12, 6)
	frac := 0.4
	req := OptimizeRequest{System: sys, BudgetFraction: &frac}

	_, first := postJSON(t, ts.URL+"/v1/optimize", req)
	resp, second := postJSON(t, ts.URL+"/v1/optimize", req)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat request cache header = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs from the original:\n%s\nvs\n%s", first, second)
	}

	// A deadline variant of the same problem still hits: the key excludes
	// the deadline and only deadline-independent results are cached.
	req.DeadlineMillis = 60_000
	resp, _ = postJSON(t, ts.URL+"/v1/optimize", req)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("deadline-variant cache header = %q, want hit", got)
	}

	// A different budget misses.
	otherFrac := 0.6
	resp, _ = postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &otherFrac})
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("different-budget cache header = %q, want miss", got)
	}
}

func TestOptimizeDeadlineAnytime(t *testing.T) {
	// A tight deadline on a large instance must produce a feasible
	// deployment with anytime metadata, not an error — and it must not be
	// cached, since deadline-truncated results are not deterministic.
	ts := newTestServer(t, Config{})
	sys := testSystem(t, 400, 100)
	frac := 0.3
	req := OptimizeRequest{System: sys, BudgetFraction: &frac, DeadlineMillis: 50}
	resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	out := decodeOptimize(t, body)
	if out.DeadlineMillis != 50 {
		t.Errorf("applied deadline = %dms, want 50", out.DeadlineMillis)
	}
	if len(out.Result.Monitors) == 0 {
		t.Error("deadline solve returned an empty deployment")
	}
	if out.Result.Proven {
		t.Skip("instance solved to optimality before the deadline")
	}
	if out.Result.Status == "" {
		t.Error("unproven result carries no status")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/optimize", req)
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("unproven result was cached (header %q)", got)
	}
}

func TestOptimizeConcurrent(t *testing.T) {
	// The acceptance bar: >= 8 concurrent optimize requests, race-clean
	// (run under -race in the CI lane), every one answered.
	ts := newTestServer(t, Config{MaxConcurrent: 4})
	sys := testSystem(t, 30, 10)
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frac := 0.2 + 0.05*float64(i%5)
			req := OptimizeRequest{System: sys, BudgetFraction: &frac}
			body, err := json.Marshal(req)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d body %s", i, resp.StatusCode, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOptimizeBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	sys := testSystem(t, 12, 6)

	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	resp2, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader([]byte(`{"nope": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field status = %d, want 400", resp2.StatusCode)
	}

	resp3, body := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{System: sys})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("missing-budget status = %d, body %s", resp3.StatusCode, body)
	}

	neg := -3.0
	resp4, body := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, Budget: &neg})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("negative-budget status = %d, body %s", resp4.StatusCode, body)
	}
}

func TestSweepEndpointAndCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	sys := testSystem(t, 12, 6)
	req := SweepRequest{System: sys, Steps: 4}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode sweep response: %v", err)
	}
	if len(out.Points) != 5 {
		t.Fatalf("sweep returned %d points, want 5", len(out.Points))
	}
	for _, p := range out.Points {
		if p.Optimal == nil || p.Greedy == nil || p.Random == nil {
			t.Fatalf("sweep point missing a series: %+v", p)
		}
		if p.Optimal.Utility+1e-9 < p.Greedy.Utility {
			t.Errorf("budget %v: optimal %v below greedy %v",
				p.Budget, p.Optimal.Utility, p.Greedy.Utility)
		}
	}
	resp, second := postJSON(t, ts.URL+"/v1/sweep", req)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat sweep cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, second) {
		t.Error("cached sweep response differs from the original")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
}

func TestServeGracefulDrain(t *testing.T) {
	// Shutdown must drain: a solve in flight when the context is cancelled
	// still completes and its response is delivered before Serve returns.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{ShutdownGrace: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, l) }()

	sys := testSystem(t, 400, 100)
	frac := 0.3
	req := OptimizeRequest{System: sys, BudgetFraction: &frac, DeadlineMillis: 400}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String() + "/v1/optimize"

	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		replies <- reply{status: resp.StatusCode, body: out}
	}()

	// Give the request time to reach the solver, then trigger shutdown
	// while it is still in flight.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case r := <-replies:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request status = %d, body %s", r.status, r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request not answered during drain")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestOptimizeDecompose exercises the decompose request field: "on" routes a
// block-structured system through the decomposition solver (visible in the
// stats), "off" pins the monolithic path, both proving the same utility, and
// the two never alias in the solution cache.
func TestOptimizeDecompose(t *testing.T) {
	ts := newTestServer(t, Config{})
	sys, err := synth.Generate(synth.Config{
		Seed: 17, Monitors: 60, Attacks: 30, Segments: 3, CrossFraction: 0.05,
	})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	frac := 0.3
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac, Decompose: "on"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompose on: status = %d, body %s", resp.StatusCode, body)
	}
	on := decodeOptimize(t, body)
	if on.Result == nil || !on.Result.Proven {
		t.Fatalf("decompose on: expected proven result, got %s", body)
	}
	if on.Result.Stats.Decomposition == nil {
		t.Fatalf("decompose on: no decomposition stats in %s", body)
	}
	if on.Result.Stats.Decomposition.Segments < 2 {
		t.Errorf("decompose on: %d segments", on.Result.Stats.Decomposition.Segments)
	}

	resp, body = postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac, Decompose: "off"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompose off: status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("decompose off after on: cache header = %q, want miss (no aliasing)", got)
	}
	off := decodeOptimize(t, body)
	if off.Result == nil || !off.Result.Proven {
		t.Fatalf("decompose off: expected proven result, got %s", body)
	}
	if off.Result.Stats.Decomposition != nil {
		t.Errorf("decompose off: decomposition stats present in %s", body)
	}
	if diff := on.Result.Utility - off.Result.Utility; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("utility: decomposed %v, monolithic %v", on.Result.Utility, off.Result.Utility)
	}

	resp, body = postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{System: sys, BudgetFraction: &frac, Decompose: "sideways"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad decompose: status = %d, body %s", resp.StatusCode, body)
	}
}
