package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
)

// solutionCache is a size-bounded LRU cache mapping canonical request hashes
// to finished response payloads. Only deterministic results are cached (the
// handlers skip deadline-truncated solves), so a hit can be replayed
// verbatim for any later identical request.
type solutionCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits, misses int
}

type cacheEntry struct {
	key   string
	value []byte // marshaled response body
}

func newSolutionCache(capacity int) *solutionCache {
	if capacity < 0 {
		capacity = 0
	}
	return &solutionCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// requestKey canonicalizes a decoded request by re-marshaling it: Go structs
// serialize with a fixed field order, so two bodies that differ only in
// whitespace, key order or ignored fields hash identically.
func requestKey(kind string, req any) (string, error) {
	canonical, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(append([]byte(kind+"\x00"), canonical...))
	return hex.EncodeToString(sum[:]), nil
}

// get returns the cached response body for key, if present, updating LRU
// order and hit counters.
func (c *solutionCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// put stores a response body, evicting the least recently used entry when
// the cache is full.
func (c *solutionCache) put(key string, value []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
}

// stats snapshots the cache counters for the health endpoint.
func (c *solutionCache) stats() (size, hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses
}
