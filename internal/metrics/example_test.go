package metrics_test

import (
	"fmt"

	"secmon/internal/casestudy"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

// Example evaluates a small hand-picked deployment on the enterprise Web
// service case study.
func Example() {
	idx, err := casestudy.BuildIndex()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d := model.NewDeployment(
		casestudy.MonitorID("nids", "core-net"),
		casestudy.MonitorID("netflow-probe", "core-net"),
		casestudy.MonitorID("http-access-logger", "web-1"),
		casestudy.MonitorID("http-access-logger", "web-2"),
	)
	fmt.Printf("cost: %.0f\n", metrics.Cost(idx, d))
	fmt.Printf("utility: %.4f of achievable %.4f\n", metrics.Utility(idx, d), metrics.MaxUtility(idx))
	fmt.Printf("sql-injection coverage: %.2f\n", metrics.AttackCoverage(idx, d, "sql-injection"))
	// Output:
	// cost: 1970
	// utility: 0.3079 of achievable 1.0000
	// sql-injection coverage: 0.50
}
