package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secmon/internal/model"
	"secmon/internal/synth"
)

// randomDeployment picks each monitor independently with probability p.
func randomDeployment(r *rand.Rand, idx *model.Index, p float64) *model.Deployment {
	d := model.NewDeployment()
	for _, id := range idx.MonitorIDs() {
		if r.Float64() < p {
			d.Add(id)
		}
	}
	return d
}

// TestQuickMetricsMonotoneAndBounded checks on random systems and
// deployments that all set-function metrics are monotone under adding a
// monitor and stay within their documented ranges.
func TestQuickMetricsMonotoneAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	property := func(seed int64) bool {
		sys, err := synth.Generate(synth.Config{
			Seed:     seed,
			Monitors: 2 + r.Intn(15),
			Attacks:  2 + r.Intn(10),
			Assets:   3,
		})
		if err != nil {
			t.Logf("Generate: %v", err)
			return false
		}
		idx, err := model.NewIndex(sys)
		if err != nil {
			t.Logf("NewIndex: %v", err)
			return false
		}
		d := randomDeployment(r, idx, 0.4)

		u := Utility(idx, d)
		rich := Richness(idx, d)
		mr := MeanRedundancy(idx, d)
		dist := Distinguishability(idx, d)
		if u < 0 || u > 1 {
			t.Logf("utility %v out of range", u)
			return false
		}
		if rich < 0 || rich > 1 {
			t.Logf("richness %v out of range", rich)
			return false
		}
		if mr < 0 {
			t.Logf("mean redundancy %v negative", mr)
			return false
		}
		if dist < 0 || dist > 1 {
			t.Logf("distinguishability %v out of range", dist)
			return false
		}
		if u > MaxUtility(idx)+1e-12 {
			t.Logf("utility %v exceeds ceiling %v", u, MaxUtility(idx))
			return false
		}

		// Add one monitor not in the deployment: nothing may decrease.
		for _, id := range idx.MonitorIDs() {
			if d.Contains(id) {
				continue
			}
			bigger := d.Clone()
			bigger.Add(id)
			if Utility(idx, bigger) < u-1e-12 {
				t.Logf("utility decreased when adding %s", id)
				return false
			}
			if Richness(idx, bigger) < rich-1e-12 {
				t.Logf("richness decreased when adding %s", id)
				return false
			}
			if MeanRedundancy(idx, bigger) < mr-1e-12 {
				t.Logf("mean redundancy decreased when adding %s", id)
				return false
			}
			for _, a := range idx.AttackIDs() {
				if AttackCoverage(idx, bigger, a) < AttackCoverage(idx, d, a)-1e-12 {
					t.Logf("coverage of %s decreased when adding %s", a, id)
					return false
				}
				if AttackConfidence(idx, bigger, a) < AttackConfidence(idx, d, a)-1e-12 {
					t.Logf("confidence of %s decreased when adding %s", a, id)
					return false
				}
			}
			break // one added monitor per case keeps the test fast
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEmptyDeploymentIsZero checks that the empty deployment always has
// zero utility, cost and redundancy on random systems.
func TestQuickEmptyDeploymentIsZero(t *testing.T) {
	property := func(seed int64) bool {
		sys, err := synth.Generate(synth.Config{Seed: seed, Monitors: 5, Attacks: 5, Assets: 2})
		if err != nil {
			return false
		}
		idx, err := model.NewIndex(sys)
		if err != nil {
			return false
		}
		empty := model.NewDeployment()
		return Utility(idx, empty) == 0 &&
			Cost(idx, empty) == 0 &&
			MeanRedundancy(idx, empty) == 0 &&
			Richness(idx, empty) == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickUtilityMatchesReportAggregation recomputes utility from the
// per-attack report rows and checks agreement.
func TestQuickUtilityMatchesReportAggregation(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	property := func(seed int64) bool {
		sys, err := synth.Generate(synth.Config{Seed: seed, Monitors: 8, Attacks: 6, Assets: 3})
		if err != nil {
			return false
		}
		idx, err := model.NewIndex(sys)
		if err != nil {
			return false
		}
		d := randomDeployment(r, idx, 0.5)
		rep := Evaluate(idx, d)

		weightSum, acc := 0.0, 0.0
		for _, row := range rep.Attacks {
			weightSum += row.Weight
			acc += row.Weight * row.Coverage
		}
		if weightSum == 0 {
			return rep.Utility == 0
		}
		diff := rep.Utility - acc/weightSum
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
