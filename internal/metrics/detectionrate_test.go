package metrics

import (
	"testing"

	"secmon/internal/model"
)

func TestDetectionRateMatchesCoverageIndicator(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment()
	for i, id := range idx.MonitorIDs() {
		if i%2 == 0 {
			d.Add(id)
		}
	}
	// DetectionRate is the weight-normalized sum over attacks with any
	// analytic coverage.
	want, total := 0.0, 0.0
	for _, a := range idx.System().Attacks {
		w := model.AttackWeight(a)
		total += w
		if AttackCoverage(idx, d, a.ID) > 0 {
			want += w
		}
	}
	want /= total
	if got := DetectionRate(idx, d); !approx(got, want) {
		t.Errorf("DetectionRate %v, want %v", got, want)
	}
}

func TestDetectionRateMonotoneAndBounded(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment()
	if got := DetectionRate(idx, d); got != 0 {
		t.Errorf("empty deployment DetectionRate %v, want 0", got)
	}
	prev := 0.0
	for _, id := range idx.MonitorIDs() {
		d.Add(id)
		got := DetectionRate(idx, d)
		if got < prev {
			t.Fatalf("adding %s decreased DetectionRate %v -> %v", id, prev, got)
		}
		if got < 0 || got > 1 {
			t.Fatalf("DetectionRate %v out of [0,1]", got)
		}
		prev = got
	}
	if prev != 1 {
		t.Errorf("full deployment DetectionRate %v, want 1 (every attack covered)", prev)
	}
}
