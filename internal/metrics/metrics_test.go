package metrics

import (
	"math"
	"testing"

	"secmon/internal/model"
)

const testTol = 1e-9

// testIndex builds the canonical small system shared by the metric tests:
//
//	monitors: m-http -> {http-log}, m-db -> {sql-audit},
//	          m-net -> {netflow, http-log}
//	attacks:  sqli (weight 2, evidence {http-log, sql-audit})
//	          exfil (weight 1, evidence {netflow})
func testIndex(t *testing.T) *model.Index {
	t.Helper()
	sys, err := model.NewBuilder("metrics-test").
		Asset("web", "Web server", "host").
		Asset("db", "Database", "host").
		DataType("http-log", "HTTP access log", "web", "src", "url", "status").
		DataType("sql-audit", "SQL audit log", "db", "user", "query").
		DataType("netflow", "Netflow record", "", "src", "dst", "bytes").
		Monitor("m-http", "Web log collector", "web", 10, 5, "http-log").
		Monitor("m-db", "DB audit", "db", 20, 10, "sql-audit").
		Monitor("m-net", "Netflow probe", "", 30, 0, "netflow", "http-log").
		Attack("sqli", "SQL injection", 2).
		Step("probe", "http-log").
		Step("inject", "http-log", "sql-audit").
		Done().
		Attack("exfil", "Data exfiltration", 1).
		Step("transfer", "netflow").
		Done().
		Build()
	if err != nil {
		t.Fatalf("build system: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	return idx
}

func approx(a, b float64) bool { return math.Abs(a-b) <= testTol }

func TestCoveredData(t *testing.T) {
	idx := testIndex(t)
	got := CoveredData(idx, model.NewDeployment("m-http", "m-net"))
	if got["http-log"] != 2 {
		t.Errorf("http-log redundancy = %d, want 2", got["http-log"])
	}
	if got["netflow"] != 1 {
		t.Errorf("netflow redundancy = %d, want 1", got["netflow"])
	}
	if _, ok := got["sql-audit"]; ok {
		t.Error("sql-audit should be uncovered")
	}
}

func TestAttackCoverage(t *testing.T) {
	idx := testIndex(t)
	tests := []struct {
		name   string
		deploy []model.MonitorID
		attack model.AttackID
		want   float64
	}{
		{name: "empty deployment", attack: "sqli", want: 0},
		{name: "half of sqli", deploy: []model.MonitorID{"m-http"}, attack: "sqli", want: 0.5},
		{name: "full sqli", deploy: []model.MonitorID{"m-http", "m-db"}, attack: "sqli", want: 1},
		{name: "netflow covers exfil", deploy: []model.MonitorID{"m-net"}, attack: "exfil", want: 1},
		{name: "unknown attack", deploy: []model.MonitorID{"m-net"}, attack: "ghost", want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := model.NewDeployment(tt.deploy...)
			if got := AttackCoverage(idx, d, tt.attack); !approx(got, tt.want) {
				t.Errorf("AttackCoverage = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUtility(t *testing.T) {
	idx := testIndex(t)
	tests := []struct {
		name   string
		deploy []model.MonitorID
		want   float64
	}{
		{name: "empty", want: 0},
		// sqli covered 1/2 with weight 2, exfil 0: (2*0.5)/3.
		{name: "http only", deploy: []model.MonitorID{"m-http"}, want: 1.0 / 3},
		// sqli 1/2 (http via net), exfil 1: (2*0.5 + 1)/3.
		{name: "net only", deploy: []model.MonitorID{"m-net"}, want: 2.0 / 3},
		{name: "all", deploy: []model.MonitorID{"m-http", "m-db", "m-net"}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := model.NewDeployment(tt.deploy...)
			if got := Utility(idx, d); !approx(got, tt.want) {
				t.Errorf("Utility = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMaxUtilityCeiling(t *testing.T) {
	idx := testIndex(t)
	if got := MaxUtility(idx); !approx(got, 1) {
		t.Errorf("MaxUtility = %v, want 1", got)
	}

	// Add an attack whose evidence nobody produces: ceiling drops below 1.
	sys := idx.System().Clone()
	sys.DataTypes = append(sys.DataTypes, model.DataType{ID: "memory", Name: "Memory dump"})
	sys.Attacks = append(sys.Attacks, model.Attack{
		ID: "rootkit", Name: "Rootkit", Weight: 1,
		Steps: []model.AttackStep{{Name: "hide", Evidence: []model.DataTypeID{"memory"}}},
	})
	idx2, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	if got := MaxUtility(idx2); got >= 1 {
		t.Errorf("MaxUtility = %v, want < 1 with unobservable attack", got)
	}
}

func TestRichness(t *testing.T) {
	idx := testIndex(t)
	// Relevant fields: http-log 3 + sql-audit 2 + netflow 3 = 8.
	tests := []struct {
		name   string
		deploy []model.MonitorID
		want   float64
	}{
		{name: "empty", want: 0},
		{name: "http only", deploy: []model.MonitorID{"m-http"}, want: 3.0 / 8},
		{name: "net probe", deploy: []model.MonitorID{"m-net"}, want: 6.0 / 8},
		{name: "all", deploy: []model.MonitorID{"m-http", "m-db", "m-net"}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := model.NewDeployment(tt.deploy...)
			if got := Richness(idx, d); !approx(got, tt.want) {
				t.Errorf("Richness = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRichnessFieldlessDataCountsOnce(t *testing.T) {
	sys, err := model.NewBuilder("fieldless").
		Asset("h", "Host", "host").
		DataType("plain", "Plain event", "h"). // no fields
		Monitor("m", "Monitor", "h", 1, 1, "plain").
		Attack("a", "Attack", 1).Step("s", "plain").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := Richness(idx, model.NewDeployment("m")); !approx(got, 1) {
		t.Errorf("Richness = %v, want 1", got)
	}
	if got := Richness(idx, model.NewDeployment()); !approx(got, 0) {
		t.Errorf("Richness(empty) = %v, want 0", got)
	}
}

func TestEvidenceRedundancyAndMean(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment("m-http", "m-net")
	if got := EvidenceRedundancy(idx, d, "http-log"); got != 2 {
		t.Errorf("EvidenceRedundancy(http-log) = %d, want 2", got)
	}
	if got := EvidenceRedundancy(idx, d, "sql-audit"); got != 0 {
		t.Errorf("EvidenceRedundancy(sql-audit) = %d, want 0", got)
	}
	// Evidence items: http-log (2), sql-audit (0), netflow (1) -> mean 1.
	if got := MeanRedundancy(idx, d); !approx(got, 1) {
		t.Errorf("MeanRedundancy = %v, want 1", got)
	}
}

func TestAttackConfidence(t *testing.T) {
	idx := testIndex(t)
	// http-log corroborated by m-http and m-net; sql-audit uncovered.
	d := model.NewDeployment("m-http", "m-net")
	if got := AttackConfidence(idx, d, "sqli"); !approx(got, 0.5) {
		t.Errorf("AttackConfidence(sqli) = %v, want 0.5", got)
	}
	if got := AttackConfidence(idx, d, "exfil"); !approx(got, 0) {
		t.Errorf("AttackConfidence(exfil) = %v, want 0", got)
	}
	if got := AttackConfidence(idx, d, "ghost"); got != 0 {
		t.Errorf("AttackConfidence(ghost) = %v, want 0", got)
	}
}

func TestDistinguishability(t *testing.T) {
	idx := testIndex(t)
	// Empty deployment: both signatures empty -> indistinguishable.
	if got := Distinguishability(idx, model.NewDeployment()); !approx(got, 0) {
		t.Errorf("Distinguishability(empty) = %v, want 0", got)
	}
	// m-http: sqli sees {http-log}, exfil sees {} -> distinguishable.
	if got := Distinguishability(idx, model.NewDeployment("m-http")); !approx(got, 1) {
		t.Errorf("Distinguishability(m-http) = %v, want 1", got)
	}
}

func TestDistinguishabilitySingleAttack(t *testing.T) {
	sys, err := model.NewBuilder("single").
		Asset("h", "Host", "host").
		DataType("d", "Data", "h").
		Monitor("m", "Monitor", "h", 1, 1, "d").
		Attack("a", "Attack", 1).Step("s", "d").Done().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := Distinguishability(idx, model.NewDeployment()); got != 1 {
		t.Errorf("Distinguishability = %v, want 1 for <2 attacks", got)
	}
}

func TestCost(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment("m-http", "m-db")
	if got := Cost(idx, d); got != 45 {
		t.Errorf("Cost = %v, want 45", got)
	}
}

func TestEvaluateReport(t *testing.T) {
	idx := testIndex(t)
	r := Evaluate(idx, model.NewDeployment("m-net"))

	if r.Cost != 30 {
		t.Errorf("Cost = %v, want 30", r.Cost)
	}
	if !approx(r.Utility, 2.0/3) {
		t.Errorf("Utility = %v, want 2/3", r.Utility)
	}
	if !approx(r.MaxUtility, 1) {
		t.Errorf("MaxUtility = %v, want 1", r.MaxUtility)
	}
	if len(r.Attacks) != 2 {
		t.Fatalf("attack rows = %d, want 2", len(r.Attacks))
	}
	// Rows sorted by attack ID: exfil before sqli.
	if r.Attacks[0].ID != "exfil" || r.Attacks[1].ID != "sqli" {
		t.Errorf("attack order = %v, %v", r.Attacks[0].ID, r.Attacks[1].ID)
	}
	ex := r.Attacks[0]
	if ex.EvidenceTotal != 1 || ex.EvidenceCovered != 1 || !approx(ex.Coverage, 1) {
		t.Errorf("exfil row = %+v", ex)
	}
	sq := r.Attacks[1]
	if sq.EvidenceTotal != 2 || sq.EvidenceCovered != 1 || !approx(sq.Coverage, 0.5) {
		t.Errorf("sqli row = %+v", sq)
	}
	if sq.Weight != 2 {
		t.Errorf("sqli weight = %v, want 2", sq.Weight)
	}

	s := r.String()
	if s == "" {
		t.Error("String() empty")
	}
}
