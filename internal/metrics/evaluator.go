package metrics

import (
	"secmon/internal/model"
)

// Evaluator computes corroborated utility for a deployment that is mutated
// one monitor at a time, without allocating per evaluation. It assigns each
// data type an integer ordinal once at construction and keeps the per-type
// producer counts of the loaded deployment in a flat slice, so Add, Remove
// and CorroboratedUtility touch no maps keyed by string identifiers — the
// dominant cost of calling the pure functions in a tight swap loop.
//
// The evaluator mirrors CoveredData/CorroboratedUtility exactly: load a
// deployment, then keep every Deployment.Add/Remove paired with the matching
// Evaluator.Add/Remove. An Evaluator is not safe for concurrent use.
type Evaluator struct {
	idx *model.Index

	// ord maps a monitor to the ordinals of the data types it produces;
	// monitors unknown to the index are absent and contribute nothing,
	// matching CoveredData's skip of unresolvable identifiers.
	ord map[model.MonitorID][]int32

	// attacks holds, per attack in system order, the precomputed weight,
	// inverse evidence count and evidence ordinals.
	attacks []evalAttack

	totalWeight float64

	// counts[o] is the number of loaded monitors producing data type
	// ordinal o — the redundancy CoveredData reports.
	counts []int32
}

type evalAttack struct {
	weight float64
	invLen float64
	ev     []int32
}

// NewEvaluator builds the ordinal structures for the index. Construction is
// O(monitors + attack evidence); amortize it over many evaluations.
func NewEvaluator(idx *model.Index) *Evaluator {
	dts := idx.DataTypeIDs()
	dtOrd := make(map[model.DataTypeID]int32, len(dts))
	for i, dt := range dts {
		dtOrd[dt] = int32(i)
	}
	e := &Evaluator{
		idx:         idx,
		ord:         make(map[model.MonitorID][]int32, len(idx.System().Monitors)),
		totalWeight: idx.System().TotalAttackWeight(),
		counts:      make([]int32, len(dts)),
	}
	for i := range idx.System().Monitors {
		m := &idx.System().Monitors[i]
		ords := make([]int32, 0, len(m.Produces))
		for _, dt := range m.Produces {
			ords = append(ords, dtOrd[dt])
		}
		e.ord[m.ID] = ords
	}
	e.attacks = make([]evalAttack, 0, len(idx.System().Attacks))
	for _, a := range idx.System().Attacks {
		ev := idx.AttackEvidence(a.ID)
		ea := evalAttack{weight: model.AttackWeight(a)}
		if len(ev) > 0 {
			ea.invLen = 1 / float64(len(ev))
			ea.ev = make([]int32, len(ev))
			for j, dt := range ev {
				ea.ev[j] = dtOrd[dt]
			}
		}
		e.attacks = append(e.attacks, ea)
	}
	return e
}

// Load resets the evaluator's producer counts to the given deployment.
func (e *Evaluator) Load(d *model.Deployment) {
	for i := range e.counts {
		e.counts[i] = 0
	}
	d.Each(e.Add)
}

// Add registers one more deployed copy of the monitor. Unknown monitors are
// ignored, as in CoveredData.
func (e *Evaluator) Add(id model.MonitorID) {
	for _, o := range e.ord[id] {
		e.counts[o]++
	}
}

// Remove unregisters a deployed copy of the monitor previously counted by
// Load or Add.
func (e *Evaluator) Remove(id model.MonitorID) {
	for _, o := range e.ord[id] {
		e.counts[o]--
	}
}

// CorroboratedUtility returns CorroboratedUtility(idx, d, k) for the loaded
// deployment state: the attack-weight-normalized coverage counting only
// evidence produced by at least k loaded monitors (k <= 1 gives Utility).
func (e *Evaluator) CorroboratedUtility(k int) float64 {
	if e.totalWeight == 0 {
		return 0
	}
	need := int32(k)
	if need < 1 {
		need = 1
	}
	sum := 0.0
	for i := range e.attacks {
		a := &e.attacks[i]
		if len(a.ev) == 0 {
			continue
		}
		n := 0
		for _, o := range a.ev {
			if e.counts[o] >= need {
				n++
			}
		}
		sum += a.weight * float64(n) * a.invLen
	}
	return sum / e.totalWeight
}
