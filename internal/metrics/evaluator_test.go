package metrics

import (
	"fmt"
	"math/rand"
	"testing"

	"secmon/internal/model"
)

// TestEvaluatorMatchesPureFunctions drives an Evaluator through random
// add/remove trajectories and checks every intermediate state against the
// pure CorroboratedUtility, for all corroboration levels the counts can
// reach. The evaluator must be a drop-in for the map-based functions.
func TestEvaluatorMatchesPureFunctions(t *testing.T) {
	idx := testIndex(t)
	mons := idx.MonitorIDs()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		d := model.NewDeployment()
		for _, id := range mons {
			if rng.Intn(2) == 0 {
				d.Add(id)
			}
		}
		e := NewEvaluator(idx)
		e.Load(d)
		check := func(step string) {
			t.Helper()
			for k := 0; k <= 4; k++ {
				want := CorroboratedUtility(idx, d, k)
				if got := e.CorroboratedUtility(k); !approx(got, want) {
					t.Fatalf("trial %d %s: k=%d evaluator=%v pure=%v deployment=%v",
						trial, step, k, got, want, d)
				}
			}
		}
		check("after load")
		for step := 0; step < 10; step++ {
			id := mons[rng.Intn(len(mons))]
			if d.Contains(id) {
				d.Remove(id)
				e.Remove(id)
			} else {
				d.Add(id)
				e.Add(id)
			}
			check(fmt.Sprintf("step %d", step))
		}
	}
}

// TestEvaluatorUnknownMonitor verifies unknown identifiers are ignored, as
// CoveredData ignores them.
func TestEvaluatorUnknownMonitor(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment("m-http", "ghost-monitor")
	e := NewEvaluator(idx)
	e.Load(d)
	if got, want := e.CorroboratedUtility(1), Utility(idx, d); !approx(got, want) {
		t.Fatalf("with unknown monitor: evaluator=%v pure=%v", got, want)
	}
	e.Remove("ghost-monitor") // must be a no-op, not a panic
	if got, want := e.CorroboratedUtility(1), Utility(idx, d); !approx(got, want) {
		t.Fatalf("after removing unknown monitor: evaluator=%v pure=%v", got, want)
	}
}

// TestEvaluatorReload verifies Load fully resets state from a previous
// deployment.
func TestEvaluatorReload(t *testing.T) {
	idx := testIndex(t)
	e := NewEvaluator(idx)
	e.Load(model.NewDeployment("m-http", "m-db", "m-net"))
	d := model.NewDeployment("m-db")
	e.Load(d)
	for k := 1; k <= 2; k++ {
		if got, want := e.CorroboratedUtility(k), CorroboratedUtility(idx, d, k); !approx(got, want) {
			t.Fatalf("k=%d after reload: evaluator=%v pure=%v", k, got, want)
		}
	}
}
