// Package metrics implements the metric suite of Thakore, Weaver and Sanders
// (DSN 2016), quantifying monitor deployments with respect to intrusion
// detection and forensics:
//
//   - Coverage: per attack, the fraction of its evidence made observable by
//     the deployed monitors.
//   - Utility: the attack-weight-normalized sum of coverages, the objective
//     maximized by the deployment optimization.
//   - Richness: the fraction of distinct security-relevant event fields the
//     deployment can record, measuring how much detail is available for
//     forensic analysis.
//   - Redundancy/confidence: how many independent monitors corroborate each
//     evidence item.
//   - Distinguishability: the fraction of attack pairs whose observable
//     evidence signatures differ, measuring diagnostic power.
//   - Cost: capital plus operational cost of the deployed monitors.
//
// All metrics are pure functions of a model.Index and a model.Deployment.
package metrics

import (
	"secmon/internal/model"
)

// CoveredData returns, for every data type producible by the deployment, the
// number of deployed monitors that produce it (its redundancy). Data types
// not covered are absent from the map.
func CoveredData(idx *model.Index, d *model.Deployment) map[model.DataTypeID]int {
	out := make(map[model.DataTypeID]int)
	for _, id := range d.IDs() {
		m, ok := idx.Monitor(id)
		if !ok {
			continue
		}
		for _, dt := range m.Produces {
			out[dt]++
		}
	}
	return out
}

// AttackCoverage returns the fraction of the attack's evidence union that is
// covered by the deployment, in [0, 1]. Unknown attacks yield 0.
func AttackCoverage(idx *model.Index, d *model.Deployment, a model.AttackID) float64 {
	covered := CoveredData(idx, d)
	return attackCoverage(idx, covered, a)
}

func attackCoverage(idx *model.Index, covered map[model.DataTypeID]int, a model.AttackID) float64 {
	ev := idx.AttackEvidence(a)
	if len(ev) == 0 {
		return 0
	}
	n := 0
	for _, e := range ev {
		if covered[e] > 0 {
			n++
		}
	}
	return float64(n) / float64(len(ev))
}

// Utility returns the detection utility of the deployment: the sum over
// attacks of weight times coverage, normalized by the total attack weight.
// It lies in [0, 1]; 1 means every evidence item of every attack is covered.
func Utility(idx *model.Index, d *model.Deployment) float64 {
	covered := CoveredData(idx, d)
	return utilityFromCovered(idx, covered)
}

func utilityFromCovered(idx *model.Index, covered map[model.DataTypeID]int) float64 {
	total := idx.System().TotalAttackWeight()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range idx.System().Attacks {
		sum += model.AttackWeight(a) * attackCoverage(idx, covered, a.ID)
	}
	return sum / total
}

// MaxUtility returns the utility of deploying every monitor in the system:
// the achievable ceiling, which is below 1 when some evidence has no
// producer.
func MaxUtility(idx *model.Index) float64 {
	all := model.NewDeployment(idx.MonitorIDs()...)
	return Utility(idx, all)
}

// Richness returns the data richness of the deployment: the fraction of
// distinct (data type, field) pairs among security-relevant data types (those
// appearing as evidence of some attack) that the deployment records. Returns
// 1 when no relevant fields exist.
func Richness(idx *model.Index, d *model.Deployment) float64 {
	relevant := make(map[model.DataTypeID]bool)
	for _, a := range idx.System().Attacks {
		for _, e := range idx.AttackEvidence(a.ID) {
			relevant[e] = true
		}
	}
	covered := CoveredData(idx, d)
	totalFields, coveredFields := 0, 0
	for dt := range relevant {
		info, ok := idx.DataType(dt)
		if !ok {
			continue
		}
		nf := len(info.Fields)
		if nf == 0 {
			nf = 1 // a field-less data type still carries one observable fact
		}
		totalFields += nf
		if covered[dt] > 0 {
			coveredFields += nf
		}
	}
	if totalFields == 0 {
		return 1
	}
	return float64(coveredFields) / float64(totalFields)
}

// EvidenceRedundancy returns the number of deployed monitors that produce
// the given data type.
func EvidenceRedundancy(idx *model.Index, d *model.Deployment, dt model.DataTypeID) int {
	n := 0
	for _, id := range d.IDs() {
		if idx.MonitorProduces(id, dt) {
			n++
		}
	}
	return n
}

// MeanRedundancy returns the average redundancy over the evidence items of
// all attacks (counting each attack's evidence union once, weighted equally).
// Uncovered evidence contributes zero; returns 0 when there is no evidence.
func MeanRedundancy(idx *model.Index, d *model.Deployment) float64 {
	covered := CoveredData(idx, d)
	total, sum := 0, 0
	seen := make(map[model.DataTypeID]bool)
	for _, a := range idx.System().Attacks {
		for _, e := range idx.AttackEvidence(a.ID) {
			if seen[e] {
				continue
			}
			seen[e] = true
			total++
			sum += covered[e]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// AttackConfidence returns the fraction of the attack's evidence that is
// corroborated by at least two independent deployed monitors, in [0, 1].
// Corroboration protects detection against a compromised or faulty monitor.
func AttackConfidence(idx *model.Index, d *model.Deployment, a model.AttackID) float64 {
	ev := idx.AttackEvidence(a)
	if len(ev) == 0 {
		return 0
	}
	covered := CoveredData(idx, d)
	n := 0
	for _, e := range ev {
		if covered[e] >= 2 {
			n++
		}
	}
	return float64(n) / float64(len(ev))
}

// Distinguishability returns the fraction of unordered attack pairs whose
// covered-evidence signatures differ under the deployment, in [0, 1]. Two
// attacks with identical observable evidence cannot be told apart during
// forensic analysis. Returns 1 when the system has fewer than two attacks.
func Distinguishability(idx *model.Index, d *model.Deployment) float64 {
	attacks := idx.AttackIDs()
	if len(attacks) < 2 {
		return 1
	}
	covered := CoveredData(idx, d)
	signatures := make([]map[model.DataTypeID]bool, len(attacks))
	for i, a := range attacks {
		sig := make(map[model.DataTypeID]bool)
		for _, e := range idx.AttackEvidence(a) {
			if covered[e] > 0 {
				sig[e] = true
			}
		}
		signatures[i] = sig
	}
	pairs, distinct := 0, 0
	for i := 0; i < len(attacks); i++ {
		for j := i + 1; j < len(attacks); j++ {
			pairs++
			if !equalSignature(signatures[i], signatures[j]) {
				distinct++
			}
		}
	}
	return float64(distinct) / float64(pairs)
}

func equalSignature(a, b map[model.DataTypeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// CorroboratedUtility returns the detection utility counting only evidence
// covered by at least k independent monitors. With k <= 1 it equals Utility;
// with k = 2 it is the weight-normalized sum of AttackConfidence values.
// Corroborated utility is what a deployment retains when any single monitor
// can be compromised or fail silently.
func CorroboratedUtility(idx *model.Index, d *model.Deployment, k int) float64 {
	if k <= 1 {
		return Utility(idx, d)
	}
	total := idx.System().TotalAttackWeight()
	if total == 0 {
		return 0
	}
	covered := CoveredData(idx, d)
	sum := 0.0
	for _, a := range idx.System().Attacks {
		ev := idx.AttackEvidence(a.ID)
		if len(ev) == 0 {
			continue
		}
		n := 0
		for _, e := range ev {
			if covered[e] >= k {
				n++
			}
		}
		sum += model.AttackWeight(a) * float64(n) / float64(len(ev))
	}
	return sum / total
}

// DetectionRate returns the attack-weight-normalized fraction of attacks
// the deployment can detect at all: those with at least one covered
// evidence item. It is the analytic ceiling any empirical detection-rate
// estimate (internal/campaign, internal/simulate) converges to under ideal
// manifestation and capture probabilities.
func DetectionRate(idx *model.Index, d *model.Deployment) float64 {
	total := idx.System().TotalAttackWeight()
	if total == 0 {
		return 0
	}
	covered := CoveredData(idx, d)
	sum := 0.0
	for _, a := range idx.System().Attacks {
		if attackCoverage(idx, covered, a.ID) > 0 {
			sum += model.AttackWeight(a)
		}
	}
	return sum / total
}

// AttackEarliness returns how early in the attack's step sequence the
// deployment first observes evidence: 1 when the first step is observable,
// decreasing linearly with the index of the earliest observable step, and 0
// when no step is observable. Earlier detection leaves less time for damage.
func AttackEarliness(idx *model.Index, d *model.Deployment, a model.AttackID) float64 {
	attack, ok := idx.Attack(a)
	if !ok || len(attack.Steps) == 0 {
		return 0
	}
	covered := CoveredData(idx, d)
	for i, step := range attack.Steps {
		for _, e := range step.Evidence {
			if covered[e] > 0 {
				return 1 - float64(i)/float64(len(attack.Steps))
			}
		}
	}
	return 0
}

// Earliness returns the attack-weight-normalized mean of AttackEarliness:
// the deployment's overall ability to catch attacks in their early stages.
func Earliness(idx *model.Index, d *model.Deployment) float64 {
	total := idx.System().TotalAttackWeight()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range idx.System().Attacks {
		sum += model.AttackWeight(a) * AttackEarliness(idx, d, a.ID)
	}
	return sum / total
}

// ExpectedUtility returns the expected detection utility when every
// deployed monitor independently fails (or is compromised into silence)
// with probability failProb: evidence with r deployed producers is covered
// with probability 1 - failProb^r. With failProb = 0 it equals Utility.
func ExpectedUtility(idx *model.Index, d *model.Deployment, failProb float64) float64 {
	if failProb <= 0 {
		return Utility(idx, d)
	}
	if failProb >= 1 {
		return 0
	}
	total := idx.System().TotalAttackWeight()
	if total == 0 {
		return 0
	}
	covered := CoveredData(idx, d)
	sum := 0.0
	for _, a := range idx.System().Attacks {
		ev := idx.AttackEvidence(a.ID)
		if len(ev) == 0 {
			continue
		}
		expected := 0.0
		for _, e := range ev {
			if r := covered[e]; r > 0 {
				expected += 1 - pow(failProb, r)
			}
		}
		sum += model.AttackWeight(a) * expected / float64(len(ev))
	}
	return sum / total
}

// pow computes q^r for small non-negative integer r without importing math.
func pow(q float64, r int) float64 {
	out := 1.0
	for i := 0; i < r; i++ {
		out *= q
	}
	return out
}

// Cost returns the total (capital plus operational) cost of the deployment.
func Cost(idx *model.Index, d *model.Deployment) float64 {
	return d.Cost(idx)
}
