package metrics

import (
	"fmt"
	"strings"

	"secmon/internal/model"
)

// AttackReport is the per-attack breakdown inside a Report.
type AttackReport struct {
	ID     model.AttackID `json:"id"`
	Name   string         `json:"name"`
	Weight float64        `json:"weight"`
	// EvidenceTotal is the size of the attack's evidence union.
	EvidenceTotal int `json:"evidenceTotal"`
	// EvidenceCovered is how many evidence items the deployment observes.
	EvidenceCovered int `json:"evidenceCovered"`
	// Coverage is EvidenceCovered / EvidenceTotal.
	Coverage float64 `json:"coverage"`
	// Confidence is the fraction of evidence corroborated by >= 2 monitors.
	Confidence float64 `json:"confidence"`
	// Earliness is how early in the step sequence the attack becomes
	// observable (1 = first step, 0 = never).
	Earliness float64 `json:"earliness"`
}

// Report bundles every metric of a deployment for presentation.
type Report struct {
	Deployment []model.MonitorID `json:"deployment"`
	Cost       float64           `json:"cost"`
	Utility    float64           `json:"utility"`
	// MaxUtility is the ceiling achievable by deploying every monitor.
	MaxUtility         float64 `json:"maxUtility"`
	Richness           float64 `json:"richness"`
	MeanRedundancy     float64 `json:"meanRedundancy"`
	Distinguishability float64 `json:"distinguishability"`
	// Earliness is the weighted mean attack earliness.
	Earliness float64 `json:"earliness"`
	// CorroboratedUtility is the utility counting only evidence seen by at
	// least two monitors.
	CorroboratedUtility float64        `json:"corroboratedUtility"`
	Attacks             []AttackReport `json:"attacks"`
}

// Evaluate computes the full metric report for a deployment. Attack rows are
// ordered by attack identifier.
func Evaluate(idx *model.Index, d *model.Deployment) *Report {
	covered := CoveredData(idx, d)
	r := &Report{
		Deployment:          d.IDs(),
		Cost:                Cost(idx, d),
		Utility:             utilityFromCovered(idx, covered),
		MaxUtility:          MaxUtility(idx),
		Richness:            Richness(idx, d),
		MeanRedundancy:      MeanRedundancy(idx, d),
		Distinguishability:  Distinguishability(idx, d),
		Earliness:           Earliness(idx, d),
		CorroboratedUtility: CorroboratedUtility(idx, d, 2),
	}
	for _, id := range idx.AttackIDs() {
		a, _ := idx.Attack(id)
		ev := idx.AttackEvidence(id)
		coveredCount := 0
		for _, e := range ev {
			if covered[e] > 0 {
				coveredCount++
			}
		}
		cov := 0.0
		if len(ev) > 0 {
			cov = float64(coveredCount) / float64(len(ev))
		}
		r.Attacks = append(r.Attacks, AttackReport{
			ID:              id,
			Name:            a.Name,
			Weight:          model.AttackWeight(*a),
			EvidenceTotal:   len(ev),
			EvidenceCovered: coveredCount,
			Coverage:        cov,
			Confidence:      AttackConfidence(idx, d, id),
			Earliness:       AttackEarliness(idx, d, id),
		})
	}
	return r
}

// String renders the report as a readable multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deployment: %d monitors, cost %.2f\n", len(r.Deployment), r.Cost)
	fmt.Fprintf(&b, "utility %.4f (max achievable %.4f), richness %.4f, mean redundancy %.2f, distinguishability %.4f\n",
		r.Utility, r.MaxUtility, r.Richness, r.MeanRedundancy, r.Distinguishability)
	fmt.Fprintf(&b, "earliness %.4f, corroborated utility (k=2) %.4f\n", r.Earliness, r.CorroboratedUtility)
	for _, a := range r.Attacks {
		fmt.Fprintf(&b, "  %-28s w=%.1f coverage %d/%d (%.2f) confidence %.2f earliness %.2f\n",
			a.ID, a.Weight, a.EvidenceCovered, a.EvidenceTotal, a.Coverage, a.Confidence, a.Earliness)
	}
	return b.String()
}

// AssetReport summarizes monitoring posture on one asset.
type AssetReport struct {
	ID   model.AssetID `json:"id"`
	Name string        `json:"name"`
	// MonitorsDeployed and MonitorsAvailable count the deployment's
	// monitors on the asset against all deployable ones.
	MonitorsDeployed  int `json:"monitorsDeployed"`
	MonitorsAvailable int `json:"monitorsAvailable"`
	// Spend is the cost of the deployed monitors on this asset.
	Spend float64 `json:"spend"`
	// RelevantData and CoveredData count the asset's security-relevant data
	// types (those used as attack evidence) and how many are covered.
	RelevantData int `json:"relevantData"`
	CoveredData  int `json:"coveredData"`
}

// EvaluateAssets computes the per-asset posture breakdown: where the
// monitoring spend sits and which assets still generate unobserved
// evidence. Rows follow the system's asset order.
func EvaluateAssets(idx *model.Index, d *model.Deployment) []AssetReport {
	relevant := make(map[model.DataTypeID]bool)
	for _, a := range idx.System().Attacks {
		for _, e := range idx.AttackEvidence(a.ID) {
			relevant[e] = true
		}
	}
	covered := CoveredData(idx, d)

	byAsset := make(map[model.AssetID]*AssetReport)
	order := make([]model.AssetID, 0, len(idx.System().Assets))
	for _, a := range idx.System().Assets {
		byAsset[a.ID] = &AssetReport{ID: a.ID, Name: a.Name}
		order = append(order, a.ID)
	}
	for _, id := range idx.MonitorIDs() {
		m, _ := idx.Monitor(id)
		r, ok := byAsset[m.Asset]
		if !ok {
			continue // unanchored monitor
		}
		r.MonitorsAvailable++
		if d.Contains(id) {
			r.MonitorsDeployed++
			r.Spend += m.TotalCost()
		}
	}
	for dt := range relevant {
		info, ok := idx.DataType(dt)
		if !ok {
			continue
		}
		r, ok := byAsset[info.Asset]
		if !ok {
			continue
		}
		r.RelevantData++
		if covered[dt] > 0 {
			r.CoveredData++
		}
	}

	out := make([]AssetReport, 0, len(order))
	for _, id := range order {
		out = append(out, *byAsset[id])
	}
	return out
}
