package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secmon/internal/model"
	"secmon/internal/synth"
)

func TestCorroboratedUtility(t *testing.T) {
	idx := testIndex(t)
	// m-http and m-net both produce http-log; sql-audit and netflow are
	// single-producer under this deployment.
	d := model.NewDeployment("m-http", "m-net")

	// k=1 equals plain utility: sqli 1/2 (http-log), exfil 1 -> (1+1)/3.
	if got, want := CorroboratedUtility(idx, d, 1), Utility(idx, d); !approx(got, want) {
		t.Errorf("k=1: %v != utility %v", got, want)
	}
	// k=2: only http-log corroborated -> sqli 1/2 weighted 2, exfil 0.
	if got := CorroboratedUtility(idx, d, 2); !approx(got, 1.0/3) {
		t.Errorf("k=2: %v, want 1/3", got)
	}
	// k=3: nothing triple-covered.
	if got := CorroboratedUtility(idx, d, 3); !approx(got, 0) {
		t.Errorf("k=3: %v, want 0", got)
	}
}

func TestCorroboratedUtilityMatchesConfidenceAggregation(t *testing.T) {
	// k=2 corroborated utility is the weight-normalized sum of
	// AttackConfidence values.
	idx := testIndex(t)
	d := model.NewDeployment("m-http", "m-net", "m-db")
	want := (2*AttackConfidence(idx, d, "sqli") + 1*AttackConfidence(idx, d, "exfil")) / 3
	if got := CorroboratedUtility(idx, d, 2); !approx(got, want) {
		t.Errorf("corroborated = %v, want %v", got, want)
	}
}

func TestAttackEarliness(t *testing.T) {
	idx := testIndex(t)
	// sqli steps: probe {http-log}, inject {http-log, sql-audit}.
	tests := []struct {
		name   string
		deploy []model.MonitorID
		attack model.AttackID
		want   float64
	}{
		{name: "first step observable", deploy: []model.MonitorID{"m-http"}, attack: "sqli", want: 1},
		{name: "second step only", deploy: []model.MonitorID{"m-db"}, attack: "sqli", want: 0.5},
		{name: "unobserved", deploy: nil, attack: "sqli", want: 0},
		{name: "single step attack", deploy: []model.MonitorID{"m-net"}, attack: "exfil", want: 1},
		{name: "unknown attack", deploy: []model.MonitorID{"m-net"}, attack: "ghost", want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := model.NewDeployment(tt.deploy...)
			if got := AttackEarliness(idx, d, tt.attack); !approx(got, tt.want) {
				t.Errorf("AttackEarliness = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEarlinessAggregate(t *testing.T) {
	idx := testIndex(t)
	// m-db: sqli earliness 0.5 (weight 2), exfil 0 (weight 1) -> 1/3.
	d := model.NewDeployment("m-db")
	if got := Earliness(idx, d); !approx(got, 1.0/3) {
		t.Errorf("Earliness = %v, want 1/3", got)
	}
	if got := Earliness(idx, model.NewDeployment()); got != 0 {
		t.Errorf("Earliness(empty) = %v", got)
	}
}

func TestEvaluateIncludesExtendedMetrics(t *testing.T) {
	idx := testIndex(t)
	rep := Evaluate(idx, model.NewDeployment("m-http", "m-net"))
	if !approx(rep.CorroboratedUtility, 1.0/3) {
		t.Errorf("report corroborated utility = %v, want 1/3", rep.CorroboratedUtility)
	}
	if rep.Earliness <= 0 {
		t.Errorf("report earliness = %v, want > 0", rep.Earliness)
	}
	for _, a := range rep.Attacks {
		if a.Earliness < 0 || a.Earliness > 1 {
			t.Errorf("attack %s earliness %v out of range", a.ID, a.Earliness)
		}
	}
}

// TestQuickExtendedMetricsMonotoneAndBounded extends the monotonicity
// property to the corroborated utility and earliness metrics.
func TestQuickExtendedMetricsMonotoneAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	property := func(seed int64) bool {
		sys, err := synth.Generate(synth.Config{Seed: seed, Monitors: 2 + r.Intn(12), Attacks: 2 + r.Intn(8), Assets: 3})
		if err != nil {
			return false
		}
		idx, err := model.NewIndex(sys)
		if err != nil {
			return false
		}
		d := randomDeployment(r, idx, 0.5)

		for k := 1; k <= 3; k++ {
			cu := CorroboratedUtility(idx, d, k)
			if cu < 0 || cu > 1 {
				t.Logf("corroborated utility %v out of range", cu)
				return false
			}
			// Raising k never raises utility.
			if k > 1 && cu > CorroboratedUtility(idx, d, k-1)+1e-12 {
				t.Logf("corroborated utility increased with k")
				return false
			}
		}
		e := Earliness(idx, d)
		if e < 0 || e > 1 {
			t.Logf("earliness %v out of range", e)
			return false
		}
		// Earliness is bounded below by nothing but above by "utility > 0
		// implies earliness > 0" — observable evidence implies an earliest
		// observable step.
		if Utility(idx, d) > 0 && e == 0 {
			t.Logf("positive utility but zero earliness")
			return false
		}

		// Monotone under adding one monitor.
		for _, id := range idx.MonitorIDs() {
			if d.Contains(id) {
				continue
			}
			bigger := d.Clone()
			bigger.Add(id)
			if CorroboratedUtility(idx, bigger, 2) < CorroboratedUtility(idx, d, 2)-1e-12 {
				t.Logf("corroborated utility decreased when adding %s", id)
				return false
			}
			if Earliness(idx, bigger) < e-1e-12 {
				t.Logf("earliness decreased when adding %s", id)
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateAssets(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment("m-http", "m-db")
	rows := EvaluateAssets(idx, d)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (web, db)", len(rows))
	}
	web, db := rows[0], rows[1]
	if web.ID != "web" || db.ID != "db" {
		t.Fatalf("order = %v, %v", web.ID, db.ID)
	}
	if web.MonitorsDeployed != 1 || web.MonitorsAvailable != 1 {
		t.Errorf("web monitors = %d/%d, want 1/1", web.MonitorsDeployed, web.MonitorsAvailable)
	}
	if web.Spend != 15 {
		t.Errorf("web spend = %v, want 15", web.Spend)
	}
	// web hosts http-log (relevant, covered); db hosts sql-audit (covered).
	if web.RelevantData != 1 || web.CoveredData != 1 {
		t.Errorf("web data = %d/%d, want 1/1", web.CoveredData, web.RelevantData)
	}
	if db.RelevantData != 1 || db.CoveredData != 1 {
		t.Errorf("db data = %d/%d, want 1/1", db.CoveredData, db.RelevantData)
	}

	// Empty deployment: nothing covered, nothing spent.
	empty := EvaluateAssets(idx, model.NewDeployment())
	for _, r := range empty {
		if r.MonitorsDeployed != 0 || r.Spend != 0 || r.CoveredData != 0 {
			t.Errorf("empty deployment row %+v not zeroed", r)
		}
	}
}
