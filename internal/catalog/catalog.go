// Package catalog provides a reusable vocabulary for building enterprise Web
// service monitoring models in the style of the DSN 2016 case study: the
// observable data kinds produced in such systems, templates for the monitors
// that collect them, and a library of common attacks on Web servers together
// with the evidence each attack step generates.
//
// The catalog is abstract over concrete systems: data kinds and monitor
// templates are bound to deployment roles (edge firewall, load balancer, Web
// server, ...) and are instantiated against a concrete topology by
// internal/casestudy.
package catalog

// Role classifies where in an enterprise Web service an asset sits; monitor
// templates and evidence specifications are bound to roles.
type Role string

// Deployment roles of the enterprise Web service reference architecture.
const (
	// RoleEdge is the Internet-facing firewall/router.
	RoleEdge Role = "edge"
	// RoleNet is the internal network fabric (span ports, taps).
	RoleNet Role = "net"
	// RoleLB is the load balancer / reverse proxy tier.
	RoleLB Role = "lb"
	// RoleWeb is the Web server tier.
	RoleWeb Role = "web"
	// RoleApp is the application server tier.
	RoleApp Role = "app"
	// RoleDB is the database tier.
	RoleDB Role = "db"
)

// Roles lists every role in a stable order.
func Roles() []Role {
	return []Role{RoleEdge, RoleNet, RoleLB, RoleWeb, RoleApp, RoleDB}
}

// DataKind names a class of observable data independent of the asset that
// produces it; concrete data types are instantiated per asset.
type DataKind string

// Data kinds observable in an enterprise Web service.
const (
	KindFirewallLog DataKind = "fw-log"
	KindNIDSAlert   DataKind = "nids-alert"
	KindNetflow     DataKind = "netflow"
	KindDNSLog      DataKind = "dns-log"
	KindLBAccess    DataKind = "lb-access"
	KindWAFLog      DataKind = "waf-log"
	KindHTTPAccess  DataKind = "http-access"
	KindHTTPError   DataKind = "http-error"
	KindAppLog      DataKind = "app-log"
	KindSyslog      DataKind = "syslog"
	KindAuthLog     DataKind = "auth-log"
	KindFIMEvent    DataKind = "fim-event"
	KindProcAudit   DataKind = "proc-audit"
	KindDBAudit     DataKind = "db-audit"
	KindDBQueryLog  DataKind = "db-query-log"
)

// DataKindSpec describes one data kind: the event fields it carries and the
// roles on which it is observable.
type DataKindSpec struct {
	Kind   DataKind
	Name   string
	Fields []string
	Roles  []Role
}

// DataKindSpecs returns the full data-kind vocabulary in a stable order.
func DataKindSpecs() []DataKindSpec {
	return []DataKindSpec{
		{Kind: KindFirewallLog, Name: "Firewall connection log", Roles: []Role{RoleEdge},
			Fields: []string{"timestamp", "src_ip", "dst_ip", "dst_port", "action", "bytes"}},
		{Kind: KindNIDSAlert, Name: "Network IDS alert", Roles: []Role{RoleNet},
			Fields: []string{"timestamp", "signature", "src_ip", "dst_ip", "severity", "payload_excerpt"}},
		{Kind: KindNetflow, Name: "Netflow record", Roles: []Role{RoleNet},
			Fields: []string{"timestamp", "src_ip", "dst_ip", "src_port", "dst_port", "bytes", "packets", "duration"}},
		{Kind: KindDNSLog, Name: "DNS query log", Roles: []Role{RoleNet},
			Fields: []string{"timestamp", "client_ip", "query", "qtype", "answer"}},
		{Kind: KindLBAccess, Name: "Load balancer access log", Roles: []Role{RoleLB},
			Fields: []string{"timestamp", "client_ip", "backend", "path", "status", "latency_ms"}},
		{Kind: KindWAFLog, Name: "Web application firewall log", Roles: []Role{RoleLB},
			Fields: []string{"timestamp", "client_ip", "rule_id", "path", "action", "match"}},
		{Kind: KindHTTPAccess, Name: "HTTP access log", Roles: []Role{RoleWeb},
			Fields: []string{"timestamp", "client_ip", "method", "path", "status", "bytes", "user_agent", "referer"}},
		{Kind: KindHTTPError, Name: "HTTP error log", Roles: []Role{RoleWeb},
			Fields: []string{"timestamp", "severity", "client_ip", "message", "module"}},
		{Kind: KindAppLog, Name: "Application log", Roles: []Role{RoleApp},
			Fields: []string{"timestamp", "level", "component", "user", "message", "session_id"}},
		{Kind: KindSyslog, Name: "System log", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Fields: []string{"timestamp", "facility", "severity", "process", "message"}},
		{Kind: KindAuthLog, Name: "Authentication log", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Fields: []string{"timestamp", "user", "source_ip", "method", "outcome"}},
		{Kind: KindFIMEvent, Name: "File integrity event", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Fields: []string{"timestamp", "path", "change", "hash_before", "hash_after", "process"}},
		{Kind: KindProcAudit, Name: "Process audit record", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Fields: []string{"timestamp", "uid", "exe", "args", "parent", "syscall"}},
		{Kind: KindDBAudit, Name: "Database audit log", Roles: []Role{RoleDB},
			Fields: []string{"timestamp", "user", "client", "statement", "object", "rows"}},
		{Kind: KindDBQueryLog, Name: "Database slow/verbose query log", Roles: []Role{RoleDB},
			Fields: []string{"timestamp", "user", "duration_ms", "query", "rows_examined"}},
	}
}

// MonitorSpec is a deployable monitor template: the data kinds it produces,
// the roles it can be deployed on, and its cost structure (capital once,
// operational per planning period; arbitrary consistent currency units).
type MonitorSpec struct {
	Slug        string
	Name        string
	Kinds       []DataKind
	Roles       []Role
	Capital     float64
	Operational float64
}

// MonitorSpecs returns the monitor template library in a stable order.
func MonitorSpecs() []MonitorSpec {
	return []MonitorSpec{
		{Slug: "fw-logger", Name: "Firewall log collector", Roles: []Role{RoleEdge},
			Kinds: []DataKind{KindFirewallLog}, Capital: 200, Operational: 100},
		{Slug: "nids", Name: "Network intrusion detection sensor", Roles: []Role{RoleNet},
			Kinds: []DataKind{KindNIDSAlert}, Capital: 800, Operational: 400},
		{Slug: "netflow-probe", Name: "Netflow probe", Roles: []Role{RoleNet},
			Kinds: []DataKind{KindNetflow}, Capital: 300, Operational: 150},
		{Slug: "dns-logger", Name: "DNS query logger", Roles: []Role{RoleNet},
			Kinds: []DataKind{KindDNSLog}, Capital: 180, Operational: 90},
		{Slug: "lb-logger", Name: "Load balancer access logger", Roles: []Role{RoleLB},
			Kinds: []DataKind{KindLBAccess}, Capital: 150, Operational: 80},
		{Slug: "waf", Name: "Web application firewall", Roles: []Role{RoleLB},
			Kinds: []DataKind{KindWAFLog}, Capital: 600, Operational: 300},
		{Slug: "http-access-logger", Name: "HTTP access log collector", Roles: []Role{RoleWeb},
			Kinds: []DataKind{KindHTTPAccess}, Capital: 100, Operational: 60},
		{Slug: "http-error-logger", Name: "HTTP error log collector", Roles: []Role{RoleWeb},
			Kinds: []DataKind{KindHTTPError}, Capital: 80, Operational: 40},
		{Slug: "app-logger", Name: "Application log collector", Roles: []Role{RoleApp},
			Kinds: []DataKind{KindAppLog}, Capital: 150, Operational: 80},
		{Slug: "syslog-agent", Name: "Syslog agent", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Kinds: []DataKind{KindSyslog}, Capital: 60, Operational: 30},
		{Slug: "auth-logger", Name: "Authentication log collector", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Kinds: []DataKind{KindAuthLog}, Capital: 60, Operational: 30},
		{Slug: "fim-agent", Name: "File integrity monitoring agent", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Kinds: []DataKind{KindFIMEvent}, Capital: 250, Operational: 120},
		{Slug: "proc-auditor", Name: "Process auditing daemon", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Kinds: []DataKind{KindProcAudit}, Capital: 200, Operational: 150},
		{Slug: "db-auditor", Name: "Database audit logger", Roles: []Role{RoleDB},
			Kinds: []DataKind{KindDBAudit}, Capital: 500, Operational: 250},
		{Slug: "db-query-logger", Name: "Database query logger", Roles: []Role{RoleDB},
			Kinds: []DataKind{KindDBQueryLog}, Capital: 120, Operational: 60},
		// Bundled sensors overlap the point collectors above: they make
		// corroborated (multi-monitor) coverage possible and create
		// bundle-versus-parts cost trade-offs for the optimizer.
		{Slug: "edr-agent", Name: "Endpoint detection and response suite", Roles: []Role{RoleWeb, RoleApp, RoleDB},
			Kinds:   []DataKind{KindSyslog, KindAuthLog, KindFIMEvent, KindProcAudit},
			Capital: 500, Operational: 300},
		{Slug: "pcap-sensor", Name: "Full packet capture sensor", Roles: []Role{RoleNet},
			Kinds:   []DataKind{KindNetflow, KindDNSLog, KindNIDSAlert},
			Capital: 700, Operational: 400},
	}
}

// EvidenceSpec names the data kind an attack step manifests in, optionally
// restricted to specific roles (empty Roles means every role the kind is
// observable on).
type EvidenceSpec struct {
	Kind  DataKind
	Roles []Role
}

// AttackStepSpec is one stage of an attack template.
type AttackStepSpec struct {
	Name     string
	Evidence []EvidenceSpec
}

// AttackSpec is a weighted attack template on the Web service, with evidence
// expressed over the data-kind vocabulary.
type AttackSpec struct {
	Slug   string
	Name   string
	Weight float64
	Steps  []AttackStepSpec
}

// WebAttacks returns the library of common attacks on Web servers used by
// the case study, in a stable order. Weights approximate likelihood times
// impact on a 1-5 scale.
func WebAttacks() []AttackSpec {
	return []AttackSpec{
		{
			Slug: "sql-injection", Name: "SQL injection", Weight: 5,
			Steps: []AttackStepSpec{
				{Name: "parameter probing", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog}}},
				{Name: "injection", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog}, {Kind: KindDBAudit}}},
				{Name: "data extraction", Evidence: []EvidenceSpec{
					{Kind: KindDBAudit}, {Kind: KindDBQueryLog}, {Kind: KindNetflow}}},
			},
		},
		{
			Slug: "xss", Name: "Cross-site scripting", Weight: 3,
			Steps: []AttackStepSpec{
				{Name: "payload injection", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog}}},
				{Name: "victim execution", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindLBAccess}}},
			},
		},
		{
			Slug: "brute-force-login", Name: "Credential brute forcing", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "password guessing", Evidence: []EvidenceSpec{
					{Kind: KindAuthLog, Roles: []Role{RoleWeb, RoleApp}},
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog}}},
				{Name: "account takeover", Evidence: []EvidenceSpec{
					{Kind: KindAuthLog, Roles: []Role{RoleWeb, RoleApp}},
					{Kind: KindAppLog}}},
			},
		},
		{
			Slug: "directory-traversal", Name: "Directory traversal", Weight: 3,
			Steps: []AttackStepSpec{
				{Name: "path probing", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindHTTPError}, {Kind: KindWAFLog}}},
				{Name: "sensitive file read", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit, Roles: []Role{RoleWeb}},
					{Kind: KindSyslog, Roles: []Role{RoleWeb}}}},
			},
		},
		{
			Slug: "remote-file-inclusion", Name: "Remote file inclusion", Weight: 3,
			Steps: []AttackStepSpec{
				{Name: "inclusion request", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog}, {Kind: KindHTTPError}}},
				{Name: "payload retrieval", Evidence: []EvidenceSpec{
					{Kind: KindNetflow}, {Kind: KindDNSLog}, {Kind: KindFirewallLog}}},
				{Name: "payload execution", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit, Roles: []Role{RoleWeb}},
					{Kind: KindAppLog}}},
			},
		},
		{
			Slug: "command-injection", Name: "OS command injection", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "injection request", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog}}},
				{Name: "command execution", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit, Roles: []Role{RoleWeb, RoleApp}},
					{Kind: KindSyslog, Roles: []Role{RoleWeb, RoleApp}}}},
				{Name: "persistence", Evidence: []EvidenceSpec{
					{Kind: KindFIMEvent, Roles: []Role{RoleWeb, RoleApp}}}},
			},
		},
		{
			Slug: "denial-of-service", Name: "Denial of service", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "traffic flood", Evidence: []EvidenceSpec{
					{Kind: KindNetflow}, {Kind: KindFirewallLog},
					{Kind: KindNIDSAlert}, {Kind: KindLBAccess}}},
				{Name: "service degradation", Evidence: []EvidenceSpec{
					{Kind: KindHTTPError}, {Kind: KindSyslog, Roles: []Role{RoleWeb}}}},
			},
		},
		{
			Slug: "web-shell-upload", Name: "Web shell upload", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "shell upload", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindWAFLog},
					{Kind: KindFIMEvent, Roles: []Role{RoleWeb}}}},
				{Name: "shell execution", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit, Roles: []Role{RoleWeb}},
					{Kind: KindHTTPAccess}}},
			},
		},
		{
			Slug: "lateral-movement", Name: "Credential theft and lateral movement", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "credential theft", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit, Roles: []Role{RoleWeb, RoleApp}},
					{Kind: KindAuthLog, Roles: []Role{RoleWeb, RoleApp}}}},
				{Name: "lateral login", Evidence: []EvidenceSpec{
					{Kind: KindAuthLog, Roles: []Role{RoleApp, RoleDB}},
					{Kind: KindNIDSAlert}}},
			},
		},
		{
			Slug: "data-exfiltration", Name: "Bulk data exfiltration", Weight: 5,
			Steps: []AttackStepSpec{
				{Name: "data staging", Evidence: []EvidenceSpec{
					{Kind: KindDBAudit}, {Kind: KindDBQueryLog},
					{Kind: KindProcAudit, Roles: []Role{RoleDB}}}},
				{Name: "outbound transfer", Evidence: []EvidenceSpec{
					{Kind: KindNetflow}, {Kind: KindFirewallLog},
					{Kind: KindDNSLog}, {Kind: KindNIDSAlert}}},
			},
		},
		{
			Slug: "defacement", Name: "Site defacement", Weight: 2,
			Steps: []AttackStepSpec{
				{Name: "content modification", Evidence: []EvidenceSpec{
					{Kind: KindFIMEvent, Roles: []Role{RoleWeb}},
					{Kind: KindHTTPAccess}}},
				{Name: "defaced page served", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindLBAccess}}},
			},
		},
		{
			Slug: "scraping-abuse", Name: "API abuse and scraping", Weight: 2,
			Steps: []AttackStepSpec{
				{Name: "systematic crawling", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindLBAccess}, {Kind: KindWAFLog}}},
				{Name: "volume anomaly", Evidence: []EvidenceSpec{
					{Kind: KindNetflow}}},
			},
		},
		{
			Slug: "csrf", Name: "Cross-site request forgery", Weight: 2,
			Steps: []AttackStepSpec{
				{Name: "forged request", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindLBAccess}}},
				{Name: "unauthorized state change", Evidence: []EvidenceSpec{
					{Kind: KindAppLog}, {Kind: KindDBAudit}}},
			},
		},
		{
			Slug: "session-hijacking", Name: "Session hijacking", Weight: 3,
			Steps: []AttackStepSpec{
				{Name: "token interception", Evidence: []EvidenceSpec{
					{Kind: KindNetflow}, {Kind: KindNIDSAlert}}},
				{Name: "session reuse", Evidence: []EvidenceSpec{
					{Kind: KindHTTPAccess}, {Kind: KindAuthLog, Roles: []Role{RoleWeb, RoleApp}},
					{Kind: KindAppLog}}},
			},
		},
		{
			Slug: "ransomware", Name: "Ransomware detonation", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "payload execution", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit}, {Kind: KindSyslog}}},
				{Name: "command and control", Evidence: []EvidenceSpec{
					{Kind: KindNetflow}, {Kind: KindDNSLog},
					{Kind: KindFirewallLog}, {Kind: KindNIDSAlert}}},
				{Name: "mass encryption", Evidence: []EvidenceSpec{
					{Kind: KindFIMEvent}, {Kind: KindSyslog}}},
			},
		},
		{
			Slug: "privilege-escalation", Name: "Local privilege escalation", Weight: 4,
			Steps: []AttackStepSpec{
				{Name: "exploit execution", Evidence: []EvidenceSpec{
					{Kind: KindProcAudit}, {Kind: KindSyslog}}},
				{Name: "privileged account use", Evidence: []EvidenceSpec{
					{Kind: KindAuthLog}, {Kind: KindSyslog}}},
				{Name: "persistence installation", Evidence: []EvidenceSpec{
					{Kind: KindFIMEvent}, {Kind: KindProcAudit}}},
			},
		},
		{
			Slug: "dns-tunneling", Name: "DNS tunneling exfiltration", Weight: 3,
			Steps: []AttackStepSpec{
				{Name: "tunnel establishment", Evidence: []EvidenceSpec{
					{Kind: KindDNSLog}}},
				{Name: "sustained covert queries", Evidence: []EvidenceSpec{
					{Kind: KindDNSLog}, {Kind: KindNetflow}, {Kind: KindNIDSAlert}}},
			},
		},
	}
}

// KindSpec returns the specification of one data kind.
func KindSpec(kind DataKind) (DataKindSpec, bool) {
	for _, spec := range DataKindSpecs() {
		if spec.Kind == kind {
			return spec, true
		}
	}
	return DataKindSpec{}, false
}

// KindObservableOn reports whether the data kind is observable on the role.
func KindObservableOn(kind DataKind, role Role) bool {
	spec, ok := KindSpec(kind)
	if !ok {
		return false
	}
	for _, r := range spec.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// BenignEventRate returns the relative volume of benign (non-attack) events
// a data kind carries during normal operation, on an arbitrary scale where
// a database audit record is 1. High-volume telemetry (netflow, HTTP access
// logs) dominates the benign background a monitoring pipeline must triage,
// while signature-driven kinds (NIDS alerts, WAF logs) fire rarely when
// nothing is wrong. Campaign simulations weight their benign background by
// these volumes; unknown kinds default to 1.
func BenignEventRate(kind DataKind) float64 {
	switch kind {
	case KindNetflow:
		return 40
	case KindHTTPAccess:
		return 30
	case KindLBAccess:
		return 25
	case KindFirewallLog:
		return 20
	case KindDNSLog:
		return 15
	case KindSyslog:
		return 10
	case KindAppLog:
		return 8
	case KindDBQueryLog:
		return 6
	case KindAuthLog:
		return 3
	case KindHTTPError, KindProcAudit:
		return 2
	case KindDBAudit:
		return 1
	case KindFIMEvent:
		return 0.5
	case KindWAFLog:
		return 0.3
	case KindNIDSAlert:
		return 0.1
	default:
		return 1
	}
}
