package catalog

import "testing"

func TestDataKindSpecsWellFormed(t *testing.T) {
	seen := make(map[DataKind]bool)
	roles := make(map[Role]bool)
	for _, r := range Roles() {
		roles[r] = true
	}
	for _, spec := range DataKindSpecs() {
		if spec.Kind == "" || spec.Name == "" {
			t.Errorf("spec %+v missing kind or name", spec)
		}
		if seen[spec.Kind] {
			t.Errorf("duplicate data kind %s", spec.Kind)
		}
		seen[spec.Kind] = true
		if len(spec.Fields) == 0 {
			t.Errorf("kind %s has no fields", spec.Kind)
		}
		if len(spec.Roles) == 0 {
			t.Errorf("kind %s has no roles", spec.Kind)
		}
		for _, r := range spec.Roles {
			if !roles[r] {
				t.Errorf("kind %s references unknown role %s", spec.Kind, r)
			}
		}
	}
}

func TestMonitorSpecsWellFormed(t *testing.T) {
	kinds := make(map[DataKind]bool)
	for _, spec := range DataKindSpecs() {
		kinds[spec.Kind] = true
	}
	seen := make(map[string]bool)
	coveredKinds := make(map[DataKind]bool)
	for _, spec := range MonitorSpecs() {
		if spec.Slug == "" || spec.Name == "" {
			t.Errorf("spec %+v missing slug or name", spec)
		}
		if seen[spec.Slug] {
			t.Errorf("duplicate monitor slug %s", spec.Slug)
		}
		seen[spec.Slug] = true
		if spec.Capital < 0 || spec.Operational < 0 {
			t.Errorf("monitor %s has negative cost", spec.Slug)
		}
		if len(spec.Kinds) == 0 || len(spec.Roles) == 0 {
			t.Errorf("monitor %s has no kinds or roles", spec.Slug)
		}
		for _, k := range spec.Kinds {
			if !kinds[k] {
				t.Errorf("monitor %s produces unknown kind %s", spec.Slug, k)
			}
			coveredKinds[k] = true
			// Every produced kind must be observable on at least one of the
			// monitor's deployment roles.
			ok := false
			for _, r := range spec.Roles {
				if KindObservableOn(k, r) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("monitor %s produces %s on roles where it is unobservable", spec.Slug, k)
			}
		}
	}
	// The template library must be able to produce every data kind.
	for _, spec := range DataKindSpecs() {
		if !coveredKinds[spec.Kind] {
			t.Errorf("no monitor template produces kind %s", spec.Kind)
		}
	}
}

func TestWebAttacksWellFormed(t *testing.T) {
	kinds := make(map[DataKind]bool)
	for _, spec := range DataKindSpecs() {
		kinds[spec.Kind] = true
	}
	seen := make(map[string]bool)
	for _, atk := range WebAttacks() {
		if atk.Slug == "" || atk.Name == "" {
			t.Errorf("attack %+v missing slug or name", atk)
		}
		if seen[atk.Slug] {
			t.Errorf("duplicate attack slug %s", atk.Slug)
		}
		seen[atk.Slug] = true
		if atk.Weight <= 0 || atk.Weight > 5 {
			t.Errorf("attack %s has weight %v outside (0, 5]", atk.Slug, atk.Weight)
		}
		if len(atk.Steps) == 0 {
			t.Errorf("attack %s has no steps", atk.Slug)
		}
		for _, step := range atk.Steps {
			if len(step.Evidence) == 0 {
				t.Errorf("attack %s step %q has no evidence", atk.Slug, step.Name)
			}
			for _, ev := range step.Evidence {
				if !kinds[ev.Kind] {
					t.Errorf("attack %s step %q references unknown kind %s", atk.Slug, step.Name, ev.Kind)
				}
				for _, r := range ev.Roles {
					if !KindObservableOn(ev.Kind, r) {
						t.Errorf("attack %s step %q: kind %s not observable on role %s",
							atk.Slug, step.Name, ev.Kind, r)
					}
				}
			}
		}
	}
	if len(WebAttacks()) < 10 {
		t.Errorf("attack library has %d attacks, want >= 10", len(WebAttacks()))
	}
}

func TestKindSpecLookup(t *testing.T) {
	spec, ok := KindSpec(KindNetflow)
	if !ok || spec.Kind != KindNetflow {
		t.Errorf("KindSpec(netflow) = (%+v, %v)", spec, ok)
	}
	if _, ok := KindSpec("ghost"); ok {
		t.Error("KindSpec(ghost) found")
	}
}

func TestKindObservableOn(t *testing.T) {
	if !KindObservableOn(KindHTTPAccess, RoleWeb) {
		t.Error("http-access should be observable on web")
	}
	if KindObservableOn(KindHTTPAccess, RoleDB) {
		t.Error("http-access should not be observable on db")
	}
	if KindObservableOn("ghost", RoleWeb) {
		t.Error("unknown kind observable")
	}
}

func TestBenignEventRates(t *testing.T) {
	// Every cataloged kind must carry a positive benign volume so the
	// campaign benign background never divides by zero.
	for _, spec := range DataKindSpecs() {
		if rate := BenignEventRate(spec.Kind); rate <= 0 {
			t.Errorf("kind %s has non-positive benign rate %v", spec.Kind, rate)
		}
	}
	// Volume ordering: raw telemetry floods, signature alerts trickle.
	if BenignEventRate(KindNetflow) <= BenignEventRate(KindAuthLog) {
		t.Error("netflow should outrank auth-log in benign volume")
	}
	if BenignEventRate(KindNIDSAlert) >= BenignEventRate(KindDBAudit) {
		t.Error("nids-alert should fire less than db-audit baseline")
	}
	if got := BenignEventRate("ghost"); got != 1 {
		t.Errorf("unknown kind benign rate %v, want default 1", got)
	}
}
