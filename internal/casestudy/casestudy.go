// Package casestudy builds the enterprise Web service use case of the DSN
// 2016 paper: a concrete topology (edge firewall, network fabric, load
// balancer, two Web servers, an application server and a database server)
// instantiated with the monitor templates and common Web attacks of
// internal/catalog.
//
// The enterprise model has 34 deployable monitors and 17 weighted attacks
// and is the subject of experiments E1-E6 and E8-E13; a small-business
// variant topology (experiment E14) and arbitrary multi-role topologies are
// also supported.
package casestudy

import (
	"fmt"

	"secmon/internal/catalog"
	"secmon/internal/model"
)

// AssetSpec places one asset of a case-study topology. An asset may carry
// several roles (a small-business host often runs the Web, application and
// database tiers together).
type AssetSpec struct {
	ID          model.AssetID
	Name        string
	Roles       []catalog.Role
	Criticality float64
}

// Topology returns the enterprise case-study assets in a stable order.
func Topology() []AssetSpec {
	return []AssetSpec{
		{ID: "edge-fw", Name: "Internet edge firewall", Roles: []catalog.Role{catalog.RoleEdge}, Criticality: 2},
		{ID: "core-net", Name: "Core network fabric", Roles: []catalog.Role{catalog.RoleNet}, Criticality: 2},
		{ID: "lb-1", Name: "Load balancer", Roles: []catalog.Role{catalog.RoleLB}, Criticality: 2},
		{ID: "web-1", Name: "Web server 1", Roles: []catalog.Role{catalog.RoleWeb}, Criticality: 3},
		{ID: "web-2", Name: "Web server 2", Roles: []catalog.Role{catalog.RoleWeb}, Criticality: 3},
		{ID: "app-1", Name: "Application server", Roles: []catalog.Role{catalog.RoleApp}, Criticality: 4},
		{ID: "db-1", Name: "Database server", Roles: []catalog.Role{catalog.RoleDB}, Criticality: 5},
	}
}

// SmallBusinessTopology returns a minimal variant of the same service: a
// single all-in-one host runs the Web, application and database tiers
// behind one firewall, with a flat office network. It demonstrates how the
// same catalog instantiates against a different topology and how optimal
// deployments change shape (experiment E14).
func SmallBusinessTopology() []AssetSpec {
	return []AssetSpec{
		{ID: "edge-fw", Name: "Office edge firewall", Roles: []catalog.Role{catalog.RoleEdge}, Criticality: 2},
		{ID: "office-net", Name: "Office network", Roles: []catalog.Role{catalog.RoleNet}, Criticality: 1},
		{ID: "allinone-1", Name: "All-in-one server",
			Roles:       []catalog.Role{catalog.RoleWeb, catalog.RoleApp, catalog.RoleDB},
			Criticality: 5},
	}
}

// DataTypeID names the concrete data type for a kind observed on an asset.
func DataTypeID(kind catalog.DataKind, asset model.AssetID) model.DataTypeID {
	return model.DataTypeID(fmt.Sprintf("%s@%s", kind, asset))
}

// MonitorID names the concrete monitor instance of a template on an asset.
func MonitorID(slug string, asset model.AssetID) model.MonitorID {
	return model.MonitorID(fmt.Sprintf("%s@%s", slug, asset))
}

// Build instantiates the enterprise Web service model: every data kind and
// monitor template is bound to each topology asset whose role matches, and
// every catalog attack's evidence is resolved to the concrete data types of
// the topology.
func Build() (*model.System, error) {
	return BuildTopology("enterprise-web-service", Topology())
}

// BuildSmallBusiness instantiates the same catalog against the
// small-business topology.
func BuildSmallBusiness() (*model.System, error) {
	return BuildTopology("small-business-web", SmallBusinessTopology())
}

// BuildTopology instantiates the catalog against an arbitrary topology.
func BuildTopology(name string, assets []AssetSpec) (*model.System, error) {
	sys := &model.System{Name: name}
	for _, a := range assets {
		kind := ""
		if len(a.Roles) > 0 {
			kind = string(a.Roles[0])
		}
		sys.Assets = append(sys.Assets, model.Asset{
			ID:          a.ID,
			Name:        a.Name,
			Kind:        kind,
			Criticality: a.Criticality,
		})
	}

	// Data types: one per (kind, asset) pair where the kind is observable
	// on any of the asset's roles.
	for _, a := range assets {
		for _, spec := range catalog.DataKindSpecs() {
			if !observableOnAny(spec.Kind, a.Roles) {
				continue
			}
			sys.DataTypes = append(sys.DataTypes, model.DataType{
				ID:     DataTypeID(spec.Kind, a.ID),
				Name:   fmt.Sprintf("%s on %s", spec.Name, a.Name),
				Asset:  a.ID,
				Fields: append([]string(nil), spec.Fields...),
			})
		}
	}

	// Monitors: one instance per (template, matching asset) pair.
	for _, a := range assets {
		for _, spec := range catalog.MonitorSpecs() {
			if !rolesIntersect(spec.Roles, a.Roles) {
				continue
			}
			var produces []model.DataTypeID
			for _, kind := range spec.Kinds {
				if observableOnAny(kind, a.Roles) {
					produces = append(produces, DataTypeID(kind, a.ID))
				}
			}
			if len(produces) == 0 {
				continue
			}
			sys.Monitors = append(sys.Monitors, model.Monitor{
				ID:              MonitorID(spec.Slug, a.ID),
				Name:            fmt.Sprintf("%s on %s", spec.Name, a.Name),
				Asset:           a.ID,
				Produces:        produces,
				CapitalCost:     spec.Capital,
				OperationalCost: spec.Operational,
			})
		}
	}

	// Attacks: resolve each evidence specification against the topology.
	for _, spec := range catalog.WebAttacks() {
		attack := model.Attack{
			ID:     model.AttackID(spec.Slug),
			Name:   spec.Name,
			Weight: spec.Weight,
		}
		for _, stepSpec := range spec.Steps {
			step := model.AttackStep{Name: stepSpec.Name}
			seen := make(map[model.DataTypeID]bool)
			for _, ev := range stepSpec.Evidence {
				for _, dt := range resolveEvidence(ev, assets) {
					if !seen[dt] {
						seen[dt] = true
						step.Evidence = append(step.Evidence, dt)
					}
				}
			}
			attack.Steps = append(attack.Steps, step)
		}
		sys.Attacks = append(sys.Attacks, attack)
	}

	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("casestudy: %w", err)
	}
	return sys, nil
}

// BuildIndex builds and indexes the enterprise case-study system.
func BuildIndex() (*model.Index, error) {
	sys, err := Build()
	if err != nil {
		return nil, err
	}
	return model.NewIndex(sys)
}

// BuildSmallBusinessIndex builds and indexes the small-business system.
func BuildSmallBusinessIndex() (*model.Index, error) {
	sys, err := BuildSmallBusiness()
	if err != nil {
		return nil, err
	}
	return model.NewIndex(sys)
}

// resolveEvidence maps an evidence specification to the concrete data types
// of every topology asset it applies to. A role-restricted specification
// matches an asset carrying any of the listed roles, provided the data kind
// is observable there.
func resolveEvidence(ev catalog.EvidenceSpec, assets []AssetSpec) []model.DataTypeID {
	var out []model.DataTypeID
	for _, a := range assets {
		if len(ev.Roles) > 0 && !rolesIntersect(ev.Roles, a.Roles) {
			continue
		}
		if !observableOnAny(ev.Kind, a.Roles) {
			continue
		}
		out = append(out, DataTypeID(ev.Kind, a.ID))
	}
	return out
}

func rolesIntersect(a, b []catalog.Role) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func observableOnAny(kind catalog.DataKind, roles []catalog.Role) bool {
	for _, r := range roles {
		if catalog.KindObservableOn(kind, r) {
			return true
		}
	}
	return false
}
