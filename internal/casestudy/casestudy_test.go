package casestudy

import (
	"reflect"
	"testing"

	"secmon/internal/catalog"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

func TestBuildValidSystem(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(sys.Assets) != len(Topology()) {
		t.Errorf("assets = %d, want %d", len(sys.Assets), len(Topology()))
	}
	if len(sys.Monitors) < 25 {
		t.Errorf("monitors = %d, want >= 25 (a realistic enterprise inventory)", len(sys.Monitors))
	}
	if len(sys.Attacks) != len(catalog.WebAttacks()) {
		t.Errorf("attacks = %d, want %d", len(sys.Attacks), len(catalog.WebAttacks()))
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Build is not deterministic")
	}
}

func TestWebTierReplication(t *testing.T) {
	idx, err := BuildIndex()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	// Both web servers carry an HTTP access log and its collector.
	for _, asset := range []model.AssetID{"web-1", "web-2"} {
		dt := DataTypeID(catalog.KindHTTPAccess, asset)
		if _, ok := idx.DataType(dt); !ok {
			t.Errorf("missing data type %s", dt)
		}
		mon := MonitorID("http-access-logger", asset)
		if _, ok := idx.Monitor(mon); !ok {
			t.Errorf("missing monitor %s", mon)
		}
	}
	// The DB auditor exists only on the database server.
	if _, ok := idx.Monitor(MonitorID("db-auditor", "db-1")); !ok {
		t.Error("missing db-auditor@db-1")
	}
	if _, ok := idx.Monitor(MonitorID("db-auditor", "web-1")); ok {
		t.Error("db-auditor instantiated on a web server")
	}
}

func TestEveryAttackFullyObservable(t *testing.T) {
	// The case-study monitor inventory covers every attack's evidence: the
	// utility ceiling is 1.
	idx, err := BuildIndex()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	for _, aid := range idx.AttackIDs() {
		ev := idx.AttackEvidence(aid)
		if idx.ObservableEvidence(aid) != len(ev) {
			t.Errorf("attack %s has unobservable evidence", aid)
		}
	}
	if got := metrics.MaxUtility(idx); got != 1 {
		t.Errorf("MaxUtility = %v, want 1", got)
	}
}

func TestEvidenceRespectsRoleRestrictions(t *testing.T) {
	idx, err := BuildIndex()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	// directory-traversal's "sensitive file read" restricts proc-audit to
	// web servers: db-1's proc-audit must not be evidence.
	atk, ok := idx.Attack("directory-traversal")
	if !ok {
		t.Fatal("missing directory-traversal attack")
	}
	var step *model.AttackStep
	for i := range atk.Steps {
		if atk.Steps[i].Name == "sensitive file read" {
			step = &atk.Steps[i]
		}
	}
	if step == nil {
		t.Fatal("missing step")
	}
	for _, e := range step.Evidence {
		if e == DataTypeID(catalog.KindProcAudit, "db-1") {
			t.Error("role-restricted evidence leaked to db-1")
		}
	}
	found := false
	for _, e := range step.Evidence {
		if e == DataTypeID(catalog.KindProcAudit, "web-1") {
			found = true
		}
	}
	if !found {
		t.Error("expected proc-audit@web-1 evidence")
	}
}

func TestTotalCostPlausible(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	total := sys.TotalMonitorCost()
	if total <= 0 {
		t.Fatalf("total cost = %v", total)
	}
	// Each monitor's cost must be positive so budget trade-offs are real.
	for _, m := range sys.Monitors {
		if m.TotalCost() <= 0 {
			t.Errorf("monitor %s has non-positive cost", m.ID)
		}
	}
}

func TestBundledSensorsEnableCorroboration(t *testing.T) {
	// The EDR suite overlaps the point agents and the packet capture sensor
	// overlaps the network probes, so corroborated (two-monitor) coverage
	// is achievable for host and network evidence.
	idx, err := BuildIndex()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	corroborable := 0
	for _, d := range idx.DataTypeIDs() {
		if len(idx.Producers(d)) >= 2 {
			corroborable++
		}
	}
	if corroborable < 10 {
		t.Errorf("only %d data types have >= 2 producers; corroboration experiments need overlap", corroborable)
	}
	// Specific overlaps.
	if got := idx.Producers(DataTypeID(catalog.KindSyslog, "web-1")); len(got) != 2 {
		t.Errorf("syslog@web-1 producers = %v, want syslog-agent + edr-agent", got)
	}
	if got := idx.Producers(DataTypeID(catalog.KindNetflow, "core-net")); len(got) != 2 {
		t.Errorf("netflow@core-net producers = %v, want netflow-probe + pcap-sensor", got)
	}
}

func TestBuildSmallBusiness(t *testing.T) {
	idx, err := BuildSmallBusinessIndex()
	if err != nil {
		t.Fatalf("BuildSmallBusinessIndex: %v", err)
	}
	sys := idx.System()
	if len(sys.Assets) != 3 {
		t.Errorf("assets = %d, want 3", len(sys.Assets))
	}
	if len(sys.Attacks) != len(catalog.WebAttacks()) {
		t.Errorf("attacks = %d, want %d", len(sys.Attacks), len(catalog.WebAttacks()))
	}
	// The all-in-one host carries monitors of all three tiers.
	for _, slug := range []string{"http-access-logger", "app-logger", "db-auditor", "edr-agent"} {
		if _, ok := idx.Monitor(MonitorID(slug, "allinone-1")); !ok {
			t.Errorf("missing %s on the all-in-one host", slug)
		}
	}
	// Far fewer monitors than the enterprise topology.
	entIdx, err := BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Monitors) >= len(entIdx.System().Monitors) {
		t.Errorf("small business has %d monitors, enterprise %d", len(sys.Monitors), len(entIdx.System().Monitors))
	}
	// Every attack remains fully observable.
	for _, aid := range idx.AttackIDs() {
		if idx.ObservableEvidence(aid) != len(idx.AttackEvidence(aid)) {
			t.Errorf("attack %s has unobservable evidence on the small topology", aid)
		}
	}
}

func TestBuildTopologyCustom(t *testing.T) {
	sys, err := BuildTopology("custom", []AssetSpec{
		{ID: "net", Name: "Net", Roles: []catalog.Role{catalog.RoleNet}, Criticality: 1},
		{ID: "host", Name: "Host", Roles: []catalog.Role{catalog.RoleWeb, catalog.RoleDB}, Criticality: 2},
	})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	if sys.Name != "custom" {
		t.Errorf("name = %q", sys.Name)
	}
	if err := sys.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
