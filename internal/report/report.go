// Package report renders a human-readable monitoring assessment for a
// deployment as Markdown: the current posture (every metric of the DSN 2016
// suite), per-attack coverage gaps, and ranked upgrade recommendations with
// their marginal utility per cost unit.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"secmon/internal/metrics"
	"secmon/internal/model"
)

// Recommendation is one candidate monitor addition.
type Recommendation struct {
	Monitor model.MonitorID `json:"monitor"`
	Cost    float64         `json:"cost"`
	// UtilityGain is the utility delta from adding the monitor to the
	// assessed deployment.
	UtilityGain float64 `json:"utilityGain"`
	// GainPerCost is UtilityGain divided by cost.
	GainPerCost float64 `json:"gainPerCost"`
}

// Recommendations ranks every undeployed monitor by marginal utility per
// cost against the given deployment, dropping zero-gain candidates. The
// result is sorted by gain-per-cost descending (ties by identifier).
func Recommendations(idx *model.Index, d *model.Deployment, limit int) []Recommendation {
	base := metrics.Utility(idx, d)
	var out []Recommendation
	for _, id := range idx.MonitorIDs() {
		if d.Contains(id) {
			continue
		}
		m, _ := idx.Monitor(id)
		trial := d.Clone()
		trial.Add(id)
		gain := metrics.Utility(idx, trial) - base
		if gain <= 1e-12 {
			continue
		}
		cost := m.TotalCost()
		perCost := gain
		if cost > 0 {
			perCost = gain / cost
		}
		out = append(out, Recommendation{
			Monitor:     id,
			Cost:        cost,
			UtilityGain: gain,
			GainPerCost: perCost,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GainPerCost != out[j].GainPerCost {
			return out[i].GainPerCost > out[j].GainPerCost
		}
		return out[i].Monitor < out[j].Monitor
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Write renders the full Markdown assessment of the deployment.
func Write(w io.Writer, idx *model.Index, d *model.Deployment) error {
	sys := idx.System()
	rep := metrics.Evaluate(idx, d)

	var b strings.Builder
	fmt.Fprintf(&b, "# Monitoring assessment: %s\n\n", sys.Name)
	fmt.Fprintf(&b, "System: %d assets, %d data types, %d deployable monitors, %d attacks (total weight %.1f).\n\n",
		len(sys.Assets), len(sys.DataTypes), len(sys.Monitors), len(sys.Attacks), sys.TotalAttackWeight())

	// Deployment inventory.
	fmt.Fprintf(&b, "## Deployment (%d monitors, cost %.0f of %.0f total)\n\n",
		d.Len(), rep.Cost, sys.TotalMonitorCost())
	if d.Len() == 0 {
		b.WriteString("*No monitors deployed.*\n\n")
	} else {
		b.WriteString("| monitor | asset | cost |\n|---|---|---|\n")
		for _, id := range d.IDs() {
			if m, ok := idx.Monitor(id); ok {
				fmt.Fprintf(&b, "| %s | %s | %.0f |\n", m.ID, m.Asset, m.TotalCost())
			}
		}
		b.WriteString("\n")
	}

	// Posture metrics.
	b.WriteString("## Posture\n\n")
	b.WriteString("| metric | value | meaning |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| Detection utility | %.4f | weighted evidence coverage (max achievable %.4f) |\n",
		rep.Utility, rep.MaxUtility)
	fmt.Fprintf(&b, "| Data richness | %.4f | fraction of relevant event fields recorded |\n", rep.Richness)
	fmt.Fprintf(&b, "| Mean redundancy | %.2f | independent monitors per evidence item |\n", rep.MeanRedundancy)
	fmt.Fprintf(&b, "| Corroborated utility | %.4f | utility surviving any single monitor compromise |\n",
		rep.CorroboratedUtility)
	fmt.Fprintf(&b, "| Distinguishability | %.4f | attack pairs separable from observed evidence |\n",
		rep.Distinguishability)
	fmt.Fprintf(&b, "| Earliness | %.4f | how early in their steps attacks become visible |\n", rep.Earliness)
	fmt.Fprintf(&b, "| Expected utility (10%% monitor failure) | %.4f | utility under unreliable monitors |\n",
		metrics.ExpectedUtility(idx, d, 0.1))
	b.WriteString("\n")

	// Per-attack table.
	b.WriteString("## Attack coverage\n\n")
	b.WriteString("| attack | weight | coverage | confidence | earliness |\n|---|---|---|---|---|\n")
	for _, a := range rep.Attacks {
		fmt.Fprintf(&b, "| %s | %.1f | %d/%d (%.2f) | %.2f | %.2f |\n",
			a.ID, a.Weight, a.EvidenceCovered, a.EvidenceTotal, a.Coverage, a.Confidence, a.Earliness)
	}
	b.WriteString("\n")

	// Gaps: uncovered evidence of under-covered attacks.
	covered := metrics.CoveredData(idx, d)
	var gaps []string
	for _, a := range rep.Attacks {
		if a.Coverage >= 1 {
			continue
		}
		var missing []string
		for _, e := range idx.AttackEvidence(a.ID) {
			if covered[e] == 0 {
				missing = append(missing, string(e))
			}
		}
		gaps = append(gaps, fmt.Sprintf("- **%s** (coverage %.2f): missing %s",
			a.ID, a.Coverage, strings.Join(missing, ", ")))
	}
	if len(gaps) > 0 {
		b.WriteString("## Gaps\n\n")
		b.WriteString(strings.Join(gaps, "\n"))
		b.WriteString("\n\n")
	}

	// Per-asset posture.
	assets := metrics.EvaluateAssets(idx, d)
	b.WriteString("## Per-asset posture\n\n")
	b.WriteString("| asset | monitors | spend | relevant data covered |\n|---|---|---|---|\n")
	for _, a := range assets {
		fmt.Fprintf(&b, "| %s | %d/%d | %.0f | %d/%d |\n",
			a.ID, a.MonitorsDeployed, a.MonitorsAvailable, a.Spend, a.CoveredData, a.RelevantData)
	}
	b.WriteString("\n")

	// Recommendations.
	recs := Recommendations(idx, d, 5)
	if len(recs) > 0 {
		b.WriteString("## Recommended additions\n\n")
		b.WriteString("| monitor | cost | utility gain | gain per cost |\n|---|---|---|---|\n")
		for _, r := range recs {
			fmt.Fprintf(&b, "| %s | %.0f | %+.4f | %.6f |\n", r.Monitor, r.Cost, r.UtilityGain, r.GainPerCost)
		}
		b.WriteString("\n")
	}

	_, err := io.WriteString(w, b.String())
	return err
}
