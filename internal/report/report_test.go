package report

import (
	"bytes"
	"strings"
	"testing"

	"secmon/internal/casestudy"
	"secmon/internal/metrics"
	"secmon/internal/model"
)

func testIndex(t *testing.T) *model.Index {
	t.Helper()
	idx, err := casestudy.BuildIndex()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return idx
}

func TestWriteSections(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment(
		casestudy.MonitorID("nids", "core-net"),
		casestudy.MonitorID("http-access-logger", "web-1"),
	)
	var buf bytes.Buffer
	if err := Write(&buf, idx, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Monitoring assessment: enterprise-web-service",
		"## Deployment (2 monitors",
		"## Posture",
		"Detection utility",
		"## Attack coverage",
		"sql-injection",
		"## Gaps",
		"## Recommended additions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteEmptyDeployment(t *testing.T) {
	idx := testIndex(t)
	var buf bytes.Buffer
	if err := Write(&buf, idx, model.NewDeployment()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(buf.String(), "*No monitors deployed.*") {
		t.Error("empty deployment not reported")
	}
}

func TestWriteFullDeploymentHasNoGaps(t *testing.T) {
	idx := testIndex(t)
	all := model.NewDeployment(idx.MonitorIDs()...)
	var buf bytes.Buffer
	if err := Write(&buf, idx, all); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "## Gaps") {
		t.Error("full deployment reports gaps")
	}
	if strings.Contains(out, "## Recommended additions") {
		t.Error("full deployment reports recommendations")
	}
}

func TestRecommendationsRankedByGainPerCost(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment()
	recs := Recommendations(idx, d, 0)
	if len(recs) == 0 {
		t.Fatal("no recommendations for an empty deployment")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].GainPerCost > recs[i-1].GainPerCost+1e-12 {
			t.Errorf("recommendations not sorted: %v before %v", recs[i-1], recs[i])
		}
	}
	// Gains must be real.
	for _, r := range recs {
		trial := d.Clone()
		trial.Add(r.Monitor)
		if got := metrics.Utility(idx, trial) - metrics.Utility(idx, d); got < r.UtilityGain-1e-9 || got > r.UtilityGain+1e-9 {
			t.Errorf("recommendation %s gain %v, recomputed %v", r.Monitor, r.UtilityGain, got)
		}
	}
}

func TestRecommendationsLimit(t *testing.T) {
	idx := testIndex(t)
	recs := Recommendations(idx, model.NewDeployment(), 3)
	if len(recs) != 3 {
		t.Errorf("limit ignored: %d recommendations", len(recs))
	}
}

func TestWritePerAssetSection(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment(casestudy.MonitorID("db-auditor", "db-1"))
	var buf bytes.Buffer
	if err := Write(&buf, idx, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "## Per-asset posture") {
		t.Error("missing per-asset section")
	}
	if !strings.Contains(out, "| db-1 | 1/") {
		t.Errorf("db-1 row missing or wrong:\n%s", out)
	}
}
