package graph

import (
	"sort"

	"secmon/internal/model"
)

// Partitioning splits the bipartite item-group graph (monitors producing
// data types) into segments connected only through a small set of cut items.
// The decomposition solver (internal/decomp) solves each segment
// independently and coordinates the cut via Lagrangian relaxation, so the
// quality target here is few cut items and balanced segment sizes, not a
// minimal cut in the graph-theoretic sense.
//
// The pipeline: union-find over groups finds connected components, oversized
// components are carved by region growing (farthest-point seeds, multi-source
// BFS), and the resulting regions are packed into at most MaxSegments
// balanced segments (longest-processing-time order). Items whose groups land
// in more than one segment are classified as cut. Everything is
// deterministic for a fixed input.

// Cut marks an item whose groups span multiple segments.
const Cut = -1

// PartitionConfig controls PartitionBipartite.
type PartitionConfig struct {
	// MaxSegments caps the number of segments produced. Values < 1 default
	// to 8.
	MaxSegments int
	// ComponentsOnly disables region-growing splits: segments are unions of
	// whole connected components and no item is ever classified as cut.
	ComponentsOnly bool
	// GroupCliques lists extra sets of group indices that must share a
	// component (e.g. the evidence of one attack, which a per-attack
	// coverage row couples). Cliques bind only at the component level;
	// region-growing may still separate clique members, so callers that
	// need cliques kept intact should set ComponentsOnly.
	GroupCliques [][]int
}

// Partition assigns items and groups to segments.
type Partition struct {
	// Segments is the number of segments (>= 1 whenever the graph is
	// non-empty).
	Segments int
	// ItemSegment maps each item to its segment, or Cut when its groups
	// span several segments.
	ItemSegment []int
	// GroupSegment maps each group to its segment. Every group belongs to
	// exactly one segment.
	GroupSegment []int
	// SegmentItems lists the non-cut items of each segment, ascending.
	SegmentItems [][]int
	// SegmentGroups lists the groups of each segment, ascending.
	SegmentGroups [][]int
	// CutItems lists the cut items, ascending.
	CutItems []int
	// Stats summarizes partition quality.
	Stats PartitionStats
}

// PartitionStats summarizes how the partition was obtained and how balanced
// it is.
type PartitionStats struct {
	// Components is the number of connected components before splitting.
	Components int
	// Splits is the number of oversized components carved by region
	// growing.
	Splits int
	// CutItems is len(Partition.CutItems).
	CutItems int
	// LargestShare is the largest segment's fraction of all items (cut
	// items excluded from the numerator).
	LargestShare float64
}

// PartitionBipartite partitions numItems items over numGroups groups, where
// groupsOf returns the (possibly empty) group indices adjacent to an item.
// Items with no groups are spread over the emptiest segments.
func PartitionBipartite(numItems, numGroups int, groupsOf func(item int) []int, cfg PartitionConfig) *Partition {
	maxSeg := cfg.MaxSegments
	if maxSeg < 1 {
		maxSeg = 8
	}

	itemGroups := make([][]int, numItems)
	groupItems := make([][]int, numGroups)
	for i := 0; i < numItems; i++ {
		gs := groupsOf(i)
		itemGroups[i] = gs
		for _, g := range gs {
			groupItems[g] = append(groupItems[g], i)
		}
	}

	// Connected components over groups: items and cliques union the groups
	// they touch.
	uf := newUnionFind(numGroups)
	for _, gs := range itemGroups {
		for i := 1; i < len(gs); i++ {
			uf.union(gs[0], gs[i])
		}
	}
	for _, clique := range cfg.GroupCliques {
		for i := 1; i < len(clique); i++ {
			uf.union(clique[0], clique[i])
		}
	}

	// Dense component ids in first-seen group order.
	compOf := make([]int, numGroups)
	compGroups := [][]int{}
	rootComp := map[int]int{}
	for g := 0; g < numGroups; g++ {
		r := uf.find(g)
		c, ok := rootComp[r]
		if !ok {
			c = len(compGroups)
			rootComp[r] = c
			compGroups = append(compGroups, nil)
		}
		compOf[g] = c
		compGroups[c] = append(compGroups[c], g)
	}
	numComps := len(compGroups)

	// Items live in the component of their first group.
	compItems := make([][]int, numComps)
	for i, gs := range itemGroups {
		if len(gs) > 0 {
			c := compOf[gs[0]]
			compItems[c] = append(compItems[c], i)
		}
	}

	// Regions start as components; oversized ones are carved by region
	// growing.
	regionOf := make([]int, numGroups)
	copy(regionOf, compOf)
	nextRegion := numComps
	splits := 0
	if !cfg.ComponentsOnly && maxSeg > 1 {
		target := (numItems + maxSeg - 1) / maxSeg
		if target < 1 {
			target = 1
		}
		scratch := newBfsScratch(numItems, numGroups)
		for c := 0; c < numComps; c++ {
			n := len(compItems[c])
			if n <= target+target/2 || len(compGroups[c]) < 2 {
				continue
			}
			k := (n + target - 1) / target
			if k > n {
				k = n
			}
			if k < 2 {
				continue
			}
			if scratch.split(compItems[c], compGroups[c], itemGroups, groupItems, k, regionOf, nextRegion) {
				splits++
			}
			nextRegion += k
		}
	}

	// Dense region ids in first-seen group order, with per-region item
	// counts (item counted at its first group) and minimum group index for
	// deterministic tie-breaks.
	denseOf := map[int]int{}
	regionGroups := [][]int{}
	for g := 0; g < numGroups; g++ {
		r := regionOf[g]
		d, ok := denseOf[r]
		if !ok {
			d = len(regionGroups)
			denseOf[r] = d
			regionGroups = append(regionGroups, nil)
		}
		regionOf[g] = d
		regionGroups[d] = append(regionGroups[d], g)
	}
	numRegions := len(regionGroups)
	regionCount := make([]int, numRegions)
	for _, gs := range itemGroups {
		if len(gs) > 0 {
			regionCount[regionOf[gs[0]]]++
		}
	}

	// Longest-processing-time packing of regions into at most maxSeg bins.
	segs := maxSeg
	if segs > numRegions {
		segs = numRegions
	}
	if segs < 1 {
		segs = 1
	}
	order := make([]int, numRegions)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		if regionCount[ra] != regionCount[rb] {
			return regionCount[ra] > regionCount[rb]
		}
		return regionGroups[ra][0] < regionGroups[rb][0]
	})
	binOf := make([]int, numRegions)
	binLoad := make([]int, segs)
	for _, r := range order {
		best := 0
		for b := 1; b < segs; b++ {
			if binLoad[b] < binLoad[best] {
				best = b
			}
		}
		binOf[r] = best
		binLoad[best] += regionCount[r]
	}

	p := &Partition{
		Segments:      segs,
		ItemSegment:   make([]int, numItems),
		GroupSegment:  make([]int, numGroups),
		SegmentItems:  make([][]int, segs),
		SegmentGroups: make([][]int, segs),
	}
	for g := 0; g < numGroups; g++ {
		s := binOf[regionOf[g]]
		p.GroupSegment[g] = s
		p.SegmentGroups[s] = append(p.SegmentGroups[s], g)
	}
	segLoad := make([]int, segs)
	var orphans []int
	for i, gs := range itemGroups {
		if len(gs) == 0 {
			orphans = append(orphans, i)
			continue
		}
		s := p.GroupSegment[gs[0]]
		cut := false
		for _, g := range gs[1:] {
			if p.GroupSegment[g] != s {
				cut = true
				break
			}
		}
		if cut {
			p.ItemSegment[i] = Cut
			p.CutItems = append(p.CutItems, i)
			continue
		}
		p.ItemSegment[i] = s
		p.SegmentItems[s] = append(p.SegmentItems[s], i)
		segLoad[s]++
	}
	// Items with no groups balance onto the emptiest segments.
	for _, i := range orphans {
		best := 0
		for s := 1; s < segs; s++ {
			if segLoad[s] < segLoad[best] {
				best = s
			}
		}
		p.ItemSegment[i] = best
		p.SegmentItems[best] = append(p.SegmentItems[best], i)
		segLoad[best]++
	}
	for s := range p.SegmentItems {
		sort.Ints(p.SegmentItems[s])
	}

	p.Stats = PartitionStats{
		Components: numComps,
		Splits:     splits,
		CutItems:   len(p.CutItems),
	}
	if numItems > 0 {
		largest := 0
		for _, n := range segLoad {
			if n > largest {
				largest = n
			}
		}
		p.Stats.LargestShare = float64(largest) / float64(numItems)
	}
	return p
}

// bfsScratch holds reusable distance/label arrays for region growing.
type bfsScratch struct {
	distItem, distGroup   []int
	labelItem, labelGroup []int
	queue                 []int // items encoded as i, groups as ^g
}

func newBfsScratch(numItems, numGroups int) *bfsScratch {
	return &bfsScratch{
		distItem:   make([]int, numItems),
		distGroup:  make([]int, numGroups),
		labelItem:  make([]int, numItems),
		labelGroup: make([]int, numGroups),
	}
}

// split carves one connected component into up to k regions by farthest-point
// seeding and multi-source BFS, rewriting regionOf for the component's groups
// to base+label. Reports whether more than one region resulted.
func (s *bfsScratch) split(items, groups []int, itemGroups, groupItems [][]int, k int, regionOf []int, base int) bool {
	seeds := []int{items[0]} // items is in ascending order by construction
	for len(seeds) < k {
		s.multiBFS(seeds, items, groups, itemGroups, groupItems)
		far, farDist := -1, 0
		for _, i := range items {
			if d := s.distItem[i]; d > farDist {
				far, farDist = i, d
			}
		}
		if far < 0 {
			break // component too tight to host another seed
		}
		seeds = append(seeds, far)
	}
	s.multiBFS(seeds, items, groups, itemGroups, groupItems)
	multi := false
	for _, g := range groups {
		regionOf[g] = base + s.labelGroup[g]
		if s.labelGroup[g] != 0 {
			multi = true
		}
	}
	return multi
}

// multiBFS runs a multi-source BFS from the seed items over the component,
// recording hop distances and the index of the nearest seed (FIFO order makes
// ties deterministic: earlier seeds win).
func (s *bfsScratch) multiBFS(seeds, items, groups []int, itemGroups, groupItems [][]int) {
	for _, i := range items {
		s.distItem[i] = -1
	}
	for _, g := range groups {
		s.distGroup[g] = -1
	}
	s.queue = s.queue[:0]
	for label, seed := range seeds {
		s.distItem[seed] = 0
		s.labelItem[seed] = label
		s.queue = append(s.queue, seed)
	}
	for head := 0; head < len(s.queue); head++ {
		node := s.queue[head]
		if node >= 0 { // item
			for _, g := range itemGroups[node] {
				if s.distGroup[g] < 0 {
					s.distGroup[g] = s.distItem[node] + 1
					s.labelGroup[g] = s.labelItem[node]
					s.queue = append(s.queue, ^g)
				}
			}
		} else { // group
			g := ^node
			for _, i := range groupItems[g] {
				if s.distItem[i] < 0 {
					s.distItem[i] = s.distGroup[g] + 1
					s.labelItem[i] = s.labelGroup[g]
					s.queue = append(s.queue, i)
				}
			}
		}
	}
}

// unionFind is a plain union-find with path halving and union by size.
type unionFind struct {
	parent, size []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// IndexPartition is a Partition over a model.Index: item i is Monitors[i],
// group g is DataTypes[g].
type IndexPartition struct {
	*Partition
	Monitors  []model.MonitorID
	DataTypes []model.DataTypeID
}

// PartitionIndex partitions an indexed system's monitor-data production
// graph: monitors are items, data types are groups. When coupleAttacks is
// true, each attack's evidence set is added as a group clique so per-attack
// coverage rows (MinCost) never straddle components; such callers should
// also set cfg.ComponentsOnly to keep cliques intact.
func PartitionIndex(idx *model.Index, coupleAttacks bool, cfg PartitionConfig) *IndexPartition {
	mons := idx.MonitorIDs()
	data := idx.DataTypeIDs()
	gidx := make(map[model.DataTypeID]int, len(data))
	for i, d := range data {
		gidx[d] = i
	}
	itemGroups := make([][]int, len(mons))
	for i, id := range mons {
		m, _ := idx.Monitor(id)
		gs := make([]int, 0, len(m.Produces))
		for _, d := range m.Produces {
			gs = append(gs, gidx[d])
		}
		itemGroups[i] = gs
	}
	if coupleAttacks {
		cfg.GroupCliques = nil
		for _, a := range idx.AttackIDs() {
			ev := idx.AttackEvidence(a)
			if len(ev) < 2 {
				continue
			}
			clique := make([]int, 0, len(ev))
			for _, d := range ev {
				clique = append(clique, gidx[d])
			}
			cfg.GroupCliques = append(cfg.GroupCliques, clique)
		}
	}
	p := PartitionBipartite(len(mons), len(data), func(i int) []int { return itemGroups[i] }, cfg)
	return &IndexPartition{Partition: p, Monitors: mons, DataTypes: data}
}
