// Package graph renders system models as GraphViz DOT documents: monitors,
// the data types they produce, and the attacks evidenced by that data, with
// an optional deployment highlighted. The output is a plain bipartite-style
// diagram that renders with `dot -Tsvg`.
package graph

import (
	"fmt"
	"io"
	"strings"

	"secmon/internal/model"
)

// WriteDOT writes the model's monitor-data-attack graph to w. When
// deployment is non-nil, deployed monitors and the data they cover are
// filled; undeployed monitors are dashed. Assets group their monitors and
// data types into clusters.
func WriteDOT(w io.Writer, idx *model.Index, deployment *model.Deployment) error {
	var b strings.Builder
	b.WriteString("digraph secmon {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\", fontsize=10];\n")

	covered := make(map[model.DataTypeID]bool)
	if deployment != nil {
		for _, id := range deployment.IDs() {
			m, ok := idx.Monitor(id)
			if !ok {
				continue
			}
			for _, d := range m.Produces {
				covered[d] = true
			}
		}
	}

	// Group monitors and data types per asset into clusters.
	type assetGroup struct {
		monitors []*model.Monitor
		data     []*model.DataType
	}
	groups := make(map[model.AssetID]*assetGroup)
	group := func(a model.AssetID) *assetGroup {
		g, ok := groups[a]
		if !ok {
			g = &assetGroup{}
			groups[a] = g
		}
		return g
	}
	for _, id := range idx.MonitorIDs() {
		m, _ := idx.Monitor(id)
		group(m.Asset).monitors = append(group(m.Asset).monitors, m)
	}
	for _, id := range idx.DataTypeIDs() {
		d, _ := idx.DataType(id)
		group(d.Asset).data = append(group(d.Asset).data, d)
	}

	clusterIdx := 0
	emitMonitor := func(m *model.Monitor) {
		style := "solid"
		fill := ""
		if deployment != nil {
			if deployment.Contains(m.ID) {
				fill = ", style=filled, fillcolor=\"#a6d96a\""
			} else {
				style = "dashed"
			}
		}
		fmt.Fprintf(&b, "    %s [shape=box, style=%q%s, label=\"%s\\ncost %.0f\"];\n",
			nodeID("m", string(m.ID)), style, fill, escape(string(m.ID)), m.TotalCost())
	}
	emitData := func(d *model.DataType) {
		fill := ""
		if covered[d.ID] {
			fill = ", style=filled, fillcolor=\"#d9ef8b\""
		}
		fmt.Fprintf(&b, "    %s [shape=ellipse%s, label=%q];\n",
			nodeID("d", string(d.ID)), fill, escape(string(d.ID)))
	}

	// Clusters per asset, in sorted order via the system slice.
	for _, a := range idx.System().Assets {
		g, ok := groups[a.ID]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    color=gray;\n",
			clusterIdx, escape(a.Name))
		clusterIdx++
		for _, m := range g.monitors {
			emitMonitor(m)
		}
		for _, d := range g.data {
			emitData(d)
		}
		b.WriteString("  }\n")
	}
	// Unanchored monitors and data (no asset).
	if g, ok := groups[""]; ok {
		for _, m := range g.monitors {
			emitMonitor(m)
		}
		for _, d := range g.data {
			emitData(d)
		}
	}

	// Attacks.
	for _, id := range idx.AttackIDs() {
		a, _ := idx.Attack(id)
		fmt.Fprintf(&b, "  %s [shape=diamond, color=red, label=\"%s\\nw=%.1f\"];\n",
			nodeID("a", string(id)), escape(string(id)), model.AttackWeight(*a))
	}

	// Edges: monitor -> data (produces).
	for _, id := range idx.MonitorIDs() {
		m, _ := idx.Monitor(id)
		for _, d := range m.Produces {
			fmt.Fprintf(&b, "  %s -> %s;\n", nodeID("m", string(id)), nodeID("d", string(d)))
		}
	}
	// Edges: data -> attack (evidence).
	for _, id := range idx.AttackIDs() {
		for _, e := range idx.AttackEvidence(id) {
			fmt.Fprintf(&b, "  %s -> %s [color=red, style=dotted];\n",
				nodeID("d", string(e)), nodeID("a", string(id)))
		}
	}
	b.WriteString("}\n")

	_, err := io.WriteString(w, b.String())
	return err
}

// nodeID builds a DOT-safe node identifier with a namespace prefix.
func nodeID(prefix, id string) string {
	var sb strings.Builder
	sb.WriteString(prefix)
	sb.WriteByte('_')
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escape makes a string safe inside a double-quoted DOT label.
func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
