package graph

import (
	"sort"

	"secmon/internal/model"
)

// AssetAdjacency derives the lateral-movement topology of a system from its
// attack library: two assets are adjacent when some attack has consecutive
// steps whose evidence is located on them — exactly the asset-to-asset
// transitions multi-stage intrusions are modeled to traverse. The result
// maps every asset that appears on such a path to its sorted neighbor list;
// assets never visited by a multi-step attack are absent. Evidence not tied
// to a single asset contributes no edges.
func AssetAdjacency(idx *model.Index) map[model.AssetID][]model.AssetID {
	assetsOf := func(evidence []model.DataTypeID) []model.AssetID {
		seen := make(map[model.AssetID]bool)
		var out []model.AssetID
		for _, dt := range evidence {
			info, ok := idx.DataType(dt)
			if !ok || info.Asset == "" || seen[info.Asset] {
				continue
			}
			seen[info.Asset] = true
			out = append(out, info.Asset)
		}
		return out
	}

	edges := make(map[model.AssetID]map[model.AssetID]bool)
	link := func(a, b model.AssetID) {
		if a == b {
			return
		}
		for _, pair := range [2][2]model.AssetID{{a, b}, {b, a}} {
			if edges[pair[0]] == nil {
				edges[pair[0]] = make(map[model.AssetID]bool)
			}
			edges[pair[0]][pair[1]] = true
		}
	}
	for _, aid := range idx.AttackIDs() {
		attack, _ := idx.Attack(aid)
		for i := 1; i < len(attack.Steps); i++ {
			for _, from := range assetsOf(attack.Steps[i-1].Evidence) {
				for _, to := range assetsOf(attack.Steps[i].Evidence) {
					link(from, to)
				}
			}
		}
	}

	out := make(map[model.AssetID][]model.AssetID, len(edges))
	for a, nbrs := range edges {
		list := make([]model.AssetID, 0, len(nbrs))
		for b := range nbrs {
			list = append(list, b)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[a] = list
	}
	return out
}
