package graph

import (
	"sort"
	"testing"

	"secmon/internal/model"
)

func TestAssetAdjacencyCaseStudy(t *testing.T) {
	idx := testIndex(t)
	adj := AssetAdjacency(idx)
	if len(adj) == 0 {
		t.Fatal("case study has multi-step attacks but the adjacency is empty")
	}
	for a, neighbors := range adj {
		if len(neighbors) == 0 {
			t.Errorf("asset %s listed with no neighbors", a)
		}
		if !sort.SliceIsSorted(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] }) {
			t.Errorf("asset %s has unsorted neighbors %v", a, neighbors)
		}
		for _, b := range neighbors {
			if b == a {
				t.Errorf("asset %s is its own neighbor", a)
			}
			// Edges are bidirectional: b must list a back.
			back := false
			for _, c := range adj[b] {
				if c == a {
					back = true
				}
			}
			if !back {
				t.Errorf("edge %s -> %s has no reverse edge", a, b)
			}
		}
	}
}

func TestAssetAdjacencyFromSteps(t *testing.T) {
	sys := &model.System{
		Name: "adjacency",
		Assets: []model.Asset{
			{ID: "edge", Name: "edge"}, {ID: "app", Name: "app"}, {ID: "db", Name: "db"},
		},
		DataTypes: []model.DataType{
			{ID: "e1", Name: "e1", Asset: "edge"},
			{ID: "a1", Name: "a1", Asset: "app"},
			{ID: "d1", Name: "d1", Asset: "db"},
		},
		Monitors: []model.Monitor{
			{ID: "m", Name: "m", Asset: "edge", Produces: []model.DataTypeID{"e1"}, CapitalCost: 1},
		},
		Attacks: []model.Attack{
			// edge -> app -> db chain; the single-step attack adds no edges.
			{ID: "chain", Name: "chain", Steps: []model.AttackStep{
				{Name: "s1", Evidence: []model.DataTypeID{"e1"}},
				{Name: "s2", Evidence: []model.DataTypeID{"a1"}},
				{Name: "s3", Evidence: []model.DataTypeID{"d1"}},
			}},
			{ID: "solo", Name: "solo", Steps: []model.AttackStep{
				{Name: "s1", Evidence: []model.DataTypeID{"d1"}},
			}},
		},
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	adj := AssetAdjacency(idx)
	want := map[model.AssetID][]model.AssetID{
		"edge": {"app"},
		"app":  {"db", "edge"},
		"db":   {"app"},
	}
	if len(adj) != len(want) {
		t.Fatalf("adjacency %v, want %v", adj, want)
	}
	for a, ns := range want {
		got := adj[a]
		if len(got) != len(ns) {
			t.Errorf("asset %s: neighbors %v, want %v", a, got, ns)
			continue
		}
		for i := range ns {
			if got[i] != ns[i] {
				t.Errorf("asset %s: neighbors %v, want %v", a, got, ns)
				break
			}
		}
	}
}
