package graph

import (
	"bytes"
	"strings"
	"testing"

	"secmon/internal/casestudy"
	"secmon/internal/model"
)

func testIndex(t *testing.T) *model.Index {
	t.Helper()
	idx, err := casestudy.BuildIndex()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return idx
}

func TestWriteDOTStructure(t *testing.T) {
	idx := testIndex(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, idx, nil); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"digraph secmon {",
		"rankdir=LR",
		"subgraph cluster_0",
		"shape=box",     // monitors
		"shape=ellipse", // data types
		"shape=diamond", // attacks
		"m_nids_core_net -> d_nids_alert_core_net;",
		"d_nids_alert_core_net -> a_denial_of_service",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}

	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestWriteDOTDeploymentHighlight(t *testing.T) {
	idx := testIndex(t)
	d := model.NewDeployment(casestudy.MonitorID("nids", "core-net"))
	var buf bytes.Buffer
	if err := WriteDOT(&buf, idx, d); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "fillcolor=\"#a6d96a\"") {
		t.Error("deployed monitor not highlighted")
	}
	if !strings.Contains(out, "fillcolor=\"#d9ef8b\"") {
		t.Error("covered data not highlighted")
	}
	if !strings.Contains(out, "style=\"dashed\"") {
		t.Error("undeployed monitors not dashed")
	}
}

func TestNodeIDSanitization(t *testing.T) {
	if got := nodeID("m", "a@b-c.d"); got != "m_a_b_c_d" {
		t.Errorf("nodeID = %q", got)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("escape = %q", got)
	}
}
