package graph

import (
	"reflect"
	"testing"

	"secmon/internal/model"
	"secmon/internal/synth"
)

// TestPartitionBlockRecovery checks that the partitioner recovers the planted
// block structure of a synthetic segmented system: 8 segments out, a small
// cut (near the planted cross-cut monitor count), and balanced sizes.
func TestPartitionBlockRecovery(t *testing.T) {
	sys, err := synth.Generate(synth.Config{
		Seed: 17, Monitors: 400, Attacks: 120, DataTypes: 400,
		Segments: 8, CrossFraction: 0.05,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	p := PartitionIndex(idx, false, PartitionConfig{MaxSegments: 8})
	if p.Segments < 4 {
		t.Fatalf("got %d segments, want >= 4 of a planted 8", p.Segments)
	}
	if p.Stats.CutItems > 100 {
		t.Errorf("cut items = %d of 400; planted cross-cut is ~20", p.Stats.CutItems)
	}
	if p.Stats.LargestShare > 0.45 {
		t.Errorf("largest segment holds %.0f%% of monitors, want balanced", 100*p.Stats.LargestShare)
	}
	for s, groups := range p.SegmentGroups {
		if len(groups) == 0 {
			t.Errorf("segment %d has no data types", s)
		}
	}
	// Non-cut items must only produce inside their own segment.
	for i, seg := range p.ItemSegment {
		if seg == Cut {
			continue
		}
		m, _ := idx.Monitor(p.Monitors[i])
		for _, d := range m.Produces {
			g := dataIndexOf(t, p, d)
			if p.GroupSegment[g] != seg {
				t.Fatalf("monitor %s in segment %d produces %s in segment %d", m.ID, seg, d, p.GroupSegment[g])
			}
		}
	}
}

func dataIndexOf(t *testing.T, p *IndexPartition, d model.DataTypeID) int {
	t.Helper()
	for i, id := range p.DataTypes {
		if id == d {
			return i
		}
	}
	t.Fatalf("data type %s not in partition", d)
	return -1
}

// TestPartitionDisconnected: disjoint components stay whole and no item is
// cut, whether or not splitting is enabled.
func TestPartitionDisconnected(t *testing.T) {
	// 4 components of 3 items x 2 groups each.
	groupsOf := func(i int) []int {
		comp := i / 3
		return []int{2 * comp, 2*comp + 1}
	}
	for _, componentsOnly := range []bool{false, true} {
		p := PartitionBipartite(12, 8, groupsOf, PartitionConfig{MaxSegments: 2, ComponentsOnly: componentsOnly})
		if p.Segments != 2 {
			t.Fatalf("componentsOnly=%v: got %d segments, want 2", componentsOnly, p.Segments)
		}
		if p.Stats.Components != 4 {
			t.Errorf("componentsOnly=%v: got %d components, want 4", componentsOnly, p.Stats.Components)
		}
		if len(p.CutItems) != 0 {
			t.Errorf("componentsOnly=%v: cut items %v in a disconnected instance", componentsOnly, p.CutItems)
		}
		for s, items := range p.SegmentItems {
			if len(items) != 6 {
				t.Errorf("componentsOnly=%v: segment %d has %d items, want 6", componentsOnly, s, len(items))
			}
		}
	}
}

// TestPartitionSingleSegment: MaxSegments=1 puts everything in one segment.
func TestPartitionSingleSegment(t *testing.T) {
	groupsOf := func(i int) []int { return []int{i % 5} }
	p := PartitionBipartite(20, 5, groupsOf, PartitionConfig{MaxSegments: 1})
	if p.Segments != 1 || len(p.CutItems) != 0 {
		t.Fatalf("got %d segments, %d cut items; want 1, 0", p.Segments, len(p.CutItems))
	}
	for i, s := range p.ItemSegment {
		if s != 0 {
			t.Fatalf("item %d in segment %d", i, s)
		}
	}
}

// TestPartitionAllCrossCut: a complete bipartite graph has no useful cut; the
// partitioner must collapse to a single segment rather than cut every item.
func TestPartitionAllCrossCut(t *testing.T) {
	all := []int{0, 1, 2, 3, 4, 5}
	p := PartitionBipartite(20, 6, func(int) []int { return all }, PartitionConfig{MaxSegments: 4})
	if p.Segments != 1 {
		t.Fatalf("got %d segments, want 1 (unsplittable graph)", p.Segments)
	}
	if len(p.CutItems) != 0 {
		t.Fatalf("cut items %v, want none once collapsed", p.CutItems)
	}
}

// TestPartitionOrphanItems: items with no groups spread over segments.
func TestPartitionOrphanItems(t *testing.T) {
	groupsOf := func(i int) []int {
		if i < 4 {
			return []int{i} // 4 singleton components
		}
		return nil // 4 orphans
	}
	p := PartitionBipartite(8, 4, groupsOf, PartitionConfig{MaxSegments: 2})
	if p.Segments != 2 {
		t.Fatalf("got %d segments, want 2", p.Segments)
	}
	total := 0
	for _, items := range p.SegmentItems {
		total += len(items)
	}
	if total != 8 || len(p.CutItems) != 0 {
		t.Fatalf("placed %d of 8 items (%d cut)", total, len(p.CutItems))
	}
}

// TestPartitionAttackCliques: coupling attacks merges the components their
// evidence bridges, so MinCost segments never split an attack's cover row.
func TestPartitionAttackCliques(t *testing.T) {
	sys := &model.System{
		Name:   "cliques",
		Assets: []model.Asset{{ID: "a", Name: "a"}},
		DataTypes: []model.DataType{
			{ID: "d0", Asset: "a"}, {ID: "d1", Asset: "a"},
			{ID: "d2", Asset: "a"}, {ID: "d3", Asset: "a"},
		},
		Monitors: []model.Monitor{
			{ID: "m0", Asset: "a", Produces: []model.DataTypeID{"d0"}, CapitalCost: 1},
			{ID: "m1", Asset: "a", Produces: []model.DataTypeID{"d1"}, CapitalCost: 1},
			{ID: "m2", Asset: "a", Produces: []model.DataTypeID{"d2"}, CapitalCost: 1},
			{ID: "m3", Asset: "a", Produces: []model.DataTypeID{"d3"}, CapitalCost: 1},
		},
		Attacks: []model.Attack{
			// Bridges the d0 and d2 components.
			{ID: "atk0", Weight: 1, Steps: []model.AttackStep{{Name: "s", Evidence: []model.DataTypeID{"d0", "d2"}}}},
		},
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	plain := PartitionIndex(idx, false, PartitionConfig{MaxSegments: 4, ComponentsOnly: true})
	if plain.Stats.Components != 4 {
		t.Fatalf("got %d components without coupling, want 4", plain.Stats.Components)
	}
	coupled := PartitionIndex(idx, true, PartitionConfig{MaxSegments: 4, ComponentsOnly: true})
	if coupled.Stats.Components != 3 {
		t.Fatalf("got %d components with coupling, want 3 (d0+d2 merged)", coupled.Stats.Components)
	}
	// d0 and d2 share a segment, so attack atk0's cover row is segment-local.
	g0 := dataIndexOf(t, coupled, "d0")
	g2 := dataIndexOf(t, coupled, "d2")
	if coupled.GroupSegment[g0] != coupled.GroupSegment[g2] {
		t.Fatalf("coupled evidence d0/d2 in segments %d/%d", coupled.GroupSegment[g0], coupled.GroupSegment[g2])
	}
}

// TestPartitionDeterministic: identical inputs give identical partitions.
func TestPartitionDeterministic(t *testing.T) {
	sys, err := synth.Generate(synth.Config{
		Seed: 5, Monitors: 200, Attacks: 60, Segments: 4, CrossFraction: 0.1,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	a := PartitionIndex(idx, false, PartitionConfig{MaxSegments: 4})
	b := PartitionIndex(idx, false, PartitionConfig{MaxSegments: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same input produced different partitions")
	}
}
