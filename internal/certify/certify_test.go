package certify

import (
	"math"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

// mkOptimal hand-builds a small valid optimal certificate:
//
//	maximize 3a + 2b,  a,b binary,  a + b <= 1
//
// with a branch on a at 0 and both children fathomed by the single dual
// vector y = [2]: up leaf U = 3 (ties the incumbent), down leaf U = 2.
func mkOptimal() *Certificate {
	return &Certificate{
		Version: Version,
		Sense:   "maximize",
		Status:  StatusOptimal,
		Vars: []Var{
			{Name: "a", Lo: fp(0), Hi: fp(1), Obj: 3, Integer: true},
			{Name: "b", Lo: fp(0), Hi: fp(1), Obj: 2, Integer: true},
		},
		Rows: []Row{
			{Name: "r0", Terms: []NZ{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Op: OpLE, RHS: 1},
		},
		IntVars:   []int{0, 1},
		X:         []float64{1, 0},
		Objective: 3,
		GapSlack:  1e-6,
		FeasTol:   1e-6,
		Branches:  []Branch{{Node: 0, KVar: 0, Floor: 0, Down: 1, Up: 2}},
		Leaves:    []Leaf{{Node: 1, Kind: KindBound, Dual: 0}, {Node: 2, Kind: KindBound, Dual: 0}},
		Duals:     [][]float64{{2}},
	}
}

// mkInfeasible hand-builds a valid infeasibility certificate:
//
//	a + b >= 3 over binaries, Farkas multiplier y = [-1]: U = -1 < 0.
func mkInfeasible() *Certificate {
	return &Certificate{
		Version: Version,
		Sense:   "maximize",
		Status:  StatusInfeasible,
		Vars: []Var{
			{Name: "a", Lo: fp(0), Hi: fp(1), Obj: 1, Integer: true},
			{Name: "b", Lo: fp(0), Hi: fp(1), Obj: 1, Integer: true},
		},
		Rows: []Row{
			{Name: "need", Terms: []NZ{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Op: OpGE, RHS: 3},
		},
		IntVars:  []int{0, 1},
		GapSlack: 1e-6,
		FeasTol:  1e-6,
		Leaves:   []Leaf{{Node: 0, Kind: KindInfeasible, Dual: 0}},
		Duals:    [][]float64{{-1}},
	}
}

func TestVerifyValidOptimal(t *testing.T) {
	rep, err := Verify(mkOptimal())
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.Status != StatusOptimal || rep.Objective != 3 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Branches != 1 || rep.Leaves != 2 || rep.BoundLeaves != 2 || rep.DualVectors != 1 {
		t.Fatalf("report counts %+v", rep)
	}
}

func TestVerifyValidInfeasible(t *testing.T) {
	rep, err := Verify(mkInfeasible())
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.Status != StatusInfeasible || rep.InfeasibleLeaves != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestVerifyValidLatticeEmpty(t *testing.T) {
	c := &Certificate{
		Version:  Version,
		Sense:    "maximize",
		Status:   StatusInfeasible,
		Vars:     []Var{{Name: "x", Lo: fp(0.2), Hi: fp(0.8), Obj: 1, Integer: true}},
		IntVars:  []int{0},
		GapSlack: 0,
		FeasTol:  1e-6,
		Leaves:   []Leaf{{Node: 0, Kind: KindLatticeEmpty, Dual: -1}},
	}
	rep, err := Verify(c)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.EmptyLeaves != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestVerifyMinimizeSense(t *testing.T) {
	// minimize 2x subject to x >= 1, x integer in [0,3]: optimum x=1, obj 2.
	// Max form objective is -2; dual y=[-2] on the GE row gives
	// d = -2 - (-2)(1) = 0, U = y*b = -2 = incumbent.
	c := &Certificate{
		Version:   Version,
		Sense:     "minimize",
		Status:    StatusOptimal,
		Vars:      []Var{{Name: "x", Lo: fp(0), Hi: fp(3), Obj: 2, Integer: true}},
		Rows:      []Row{{Terms: []NZ{{Var: 0, Coeff: 1}}, Op: OpGE, RHS: 1}},
		IntVars:   []int{0},
		X:         []float64{1},
		Objective: 2,
		GapSlack:  1e-9,
		FeasTol:   1e-6,
		Leaves:    []Leaf{{Node: 0, Kind: KindBound, Dual: 0}},
		Duals:     [][]float64{{-2}},
	}
	if _, err := Verify(c); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyFreeVariableBound(t *testing.T) {
	// A free continuous variable with a nonzero reduced objective makes the
	// bound unbounded above: the dual vector is unusable and the leaf must
	// be rejected.
	c := mkOptimal()
	c.Vars = append(c.Vars, Var{Name: "z", Obj: 1}) // free, in no row
	c.X = append(c.X, 0)
	_, err := Verify(c)
	if err == nil || !strings.Contains(err.Error(), "unbounded") {
		t.Fatalf("err = %v, want unbounded-above rejection", err)
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Certificate)
		wantSub string
	}{
		{"nil", func(c *Certificate) {}, ""}, // replaced below
		{"bad version", func(c *Certificate) { c.Version = 99 }, "version"},
		{"bad sense", func(c *Certificate) { c.Sense = "max" }, "sense"},
		{"bad status", func(c *Certificate) { c.Status = "done" }, "status"},
		{"corrupted objective", func(c *Certificate) { c.Objective = 4 }, "objective"},
		{"infeasible X", func(c *Certificate) { c.X = []float64{1, 1} }, "violated"},
		{"fractional integer", func(c *Certificate) { c.X = []float64{0.5, 0}; c.Objective = 1.5 }, "fractional"},
		{"X out of bounds", func(c *Certificate) { c.X = []float64{1, -1}; c.Objective = 1 }, "bound"},
		{"X length", func(c *Certificate) { c.X = []float64{1} }, "entries"},
		{"NaN in X", func(c *Certificate) { c.X = []float64{1, math.NaN()} }, "non-finite"},
		{"corrupted dual sign", func(c *Certificate) { c.Duals[0][0] = -2 }, "negative multiplier"},
		{"dual length", func(c *Certificate) { c.Duals[0] = []float64{2, 1} }, "entries"},
		{"NaN dual", func(c *Certificate) { c.Duals[0][0] = math.NaN() }, "non-finite"},
		{"weakened incumbent", func(c *Certificate) {
			// X=[0,1] is feasible with objective 2, but the up leaf still
			// proves only U=3: the bound no longer closes the tree.
			c.X = []float64{0, 1}
			c.Objective = 2
		}, "bound proof"},
		{"corrupted branch child", func(c *Certificate) { c.Branches[0].Down = 3 }, "neither branched nor fathomed"},
		{"branch kvar range", func(c *Certificate) { c.Branches[0].KVar = 5 }, "kvar"},
		{"fractional floor", func(c *Certificate) { c.Branches[0].Floor = 0.5 }, "floor"},
		{"missing leaf", func(c *Certificate) { c.Leaves = c.Leaves[:1] }, "neither branched nor fathomed"},
		{"duplicate leaf", func(c *Certificate) { c.Leaves[1].Node = 1 }, "twice"},
		{"branch and leaf", func(c *Certificate) { c.Leaves[0].Node = 0 }, "both"},
		{"orphan node", func(c *Certificate) {
			c.Leaves = append(c.Leaves, Leaf{Node: 9, Kind: KindBound, Dual: 0})
		}, "unreachable"},
		{"unknown kind", func(c *Certificate) { c.Leaves[0].Kind = "pruned" }, "kind"},
		{"dual index range", func(c *Certificate) { c.Leaves[0].Dual = 7 }, "dual vector"},
		{"latticeEmpty nonempty", func(c *Certificate) {
			c.Leaves[0] = Leaf{Node: 1, Kind: KindLatticeEmpty, Dual: -1}
		}, "non-empty"},
		{"latticeEmpty with dual", func(c *Certificate) {
			c.Leaves[0] = Leaf{Node: 1, Kind: KindLatticeEmpty, Dual: 0}
		}, "dual"},
		{"unknown op", func(c *Certificate) { c.Rows[0].Op = "<" }, "op"},
		{"row var range", func(c *Certificate) { c.Rows[0].Terms[0].Var = 9 }, "references"},
		{"NaN rhs", func(c *Certificate) { c.Rows[0].RHS = math.NaN() }, "non-finite"},
		{"negative gapSlack", func(c *Certificate) { c.GapSlack = -1 }, "gapSlack"},
		{"negative feasTol", func(c *Certificate) { c.FeasTol = math.Inf(1) }, "feasTol"},
		{"intVars range", func(c *Certificate) { c.IntVars = []int{0, 9} }, "out of range"},
		{"intVars duplicate", func(c *Certificate) { c.IntVars = []int{0, 0} }, "twice"},
		{"intVars not integer", func(c *Certificate) { c.Vars[1].Integer = false }, "not marked integer"},
		{"empty var bounds", func(c *Certificate) { c.Vars[0].Lo = fp(2) }, "empty bounds"},
	}
	for _, tc := range cases[1:] {
		t.Run(tc.name, func(t *testing.T) {
			c := mkOptimal()
			tc.mutate(c)
			_, err := Verify(c)
			if err == nil {
				t.Fatalf("corruption accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestVerifyRejectsInfeasibleCorruption(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Certificate)
		wantSub string
	}{
		{"zeroed farkas", func(c *Certificate) { c.Duals[0][0] = 0 }, "not negative"},
		{"X on infeasible", func(c *Certificate) { c.X = []float64{1, 1} }, "solution vector"},
		{"bound leaf on infeasible", func(c *Certificate) { c.Leaves[0].Kind = KindBound }, "bound leaf"},
		{"positive GE multiplier", func(c *Certificate) { c.Duals[0][0] = 1 }, "positive multiplier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mkInfeasible()
			tc.mutate(c)
			if _, err := Verify(c); err == nil {
				t.Fatalf("corruption accepted")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestVerifyNil(t *testing.T) {
	if _, err := Verify(nil); err == nil {
		t.Fatal("nil certificate accepted")
	}
}

func TestFloorCeilRat(t *testing.T) {
	cases := []struct {
		v         float64
		floor, cl int64
	}{
		{2.5, 2, 3}, {-2.5, -3, -2}, {3, 3, 3}, {-3, -3, -3}, {0.2, 0, 1}, {-0.2, -1, 0},
	}
	for _, tc := range cases {
		r, err := ratOf(tc.v)
		if err != nil {
			t.Fatalf("ratOf(%v): %v", tc.v, err)
		}
		if got := floorRat(r).Int64(); got != tc.floor {
			t.Errorf("floor(%v) = %d, want %d", tc.v, got, tc.floor)
		}
		if got := ceilRat(r).Int64(); got != tc.cl {
			t.Errorf("ceil(%v) = %d, want %d", tc.v, got, tc.cl)
		}
	}
	if _, err := ratOf(math.Inf(1)); err == nil {
		t.Error("ratOf accepted +Inf")
	}
}
