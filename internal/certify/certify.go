// Package certify defines machine-checkable optimality certificates for the
// branch-and-bound solver in internal/ilp, and a self-contained verifier for
// them.
//
// A certificate embeds the full instance (variables, bounds, objective,
// rows), the incumbent the solver reported, and a proof that no better
// integer point exists: a branch tree whose leaves partition the root
// integer box, and for every leaf either an LP weak-duality bound (the
// leaf's subproblem cannot beat the incumbent) or a Farkas-style
// infeasibility bound (the leaf's subproblem contains no feasible point at
// all). The dual vectors reuse the shadow prices the simplex kernels already
// extract during the solve; they are *claims*, not trusted data — the
// verifier re-derives every bound from them with exact rational arithmetic.
//
// The verifier (see Verify) is the trusted component: it performs no simplex
// pivots, shares no code with internal/lp, and evaluates every inequality in
// math/big.Rat exactly. Anyone auditing a deployment decision only needs to
// read this package.
//
// # Leaf proofs
//
// Work in maximize form: c' = c for a maximization, c' = -c for a
// minimization, so the optimum is always an upper bound question. For any
// dual vector y that is sign-valid for the rows (y_i >= 0 for <= rows,
// y_i <= 0 for >= rows, free for = rows), every x in the leaf's box that
// satisfies the rows obeys
//
//	c'x  <=  y·b + sum_j sup{ d_j x_j : l_j <= x_j <= u_j },   d = c' - Aᵀy
//
// because y·(b - Ax) >= 0 for sign-valid y. The right-hand side U is
// computable without any optimization: each sup term is d_j u_j, d_j l_j or
// 0 by the sign of d_j. A "bound" leaf claims U <= incumbent + GapSlack. An
// "infeasible" leaf applies the same inequality with c' = 0: U < 0 proves
// 0 <= U < 0 is impossible, so the leaf's box holds no feasible point
// (y is then exactly a Farkas certificate). No dual feasibility of d is
// required — the box supremum absorbs any sign of d — so even clamped or
// slightly perturbed dual vectors yield sound (merely weaker) bounds.
package certify

// Version is the certificate schema version emitted and accepted.
const Version = 1

// Row operators, as encoded in Row.Op.
const (
	OpLE = "<="
	OpGE = ">="
	OpEQ = "="
)

// Leaf kinds, as encoded in Leaf.Kind.
const (
	// KindBound claims the leaf's LP relaxation cannot beat the incumbent:
	// the weak-duality bound from Duals[Leaf.Dual] is <= objective+GapSlack.
	KindBound = "bound"
	// KindInfeasible claims the leaf's box holds no feasible point: the
	// c'=0 weak-duality bound from Duals[Leaf.Dual] is strictly negative.
	KindInfeasible = "infeasible"
	// KindLatticeEmpty claims the leaf's integer box is empty (some integer
	// variable has ceil(lo) > floor(hi)); no dual vector is needed.
	KindLatticeEmpty = "latticeEmpty"
)

// Certificate statuses.
const (
	// StatusOptimal certifies X as an optimal solution (within GapSlack).
	StatusOptimal = "optimal"
	// StatusInfeasible certifies that no integer-feasible point exists.
	StatusInfeasible = "infeasible"
)

// Var is one decision variable of the embedded instance. Nil bounds encode
// infinities (Lo nil = -inf, Hi nil = +inf), which JSON cannot carry as
// numbers.
type Var struct {
	Name    string   `json:"name,omitempty"`
	Lo      *float64 `json:"lo,omitempty"`
	Hi      *float64 `json:"hi,omitempty"`
	Obj     float64  `json:"obj,omitempty"`
	Integer bool     `json:"integer,omitempty"`
}

// NZ is one nonzero coefficient of a row.
type NZ struct {
	Var   int     `json:"v"`
	Coeff float64 `json:"c"`
}

// Row is one linear constraint of the embedded instance.
type Row struct {
	Name  string  `json:"name,omitempty"`
	Terms []NZ    `json:"terms"`
	Op    string  `json:"op"`
	RHS   float64 `json:"rhs"`
}

// Branch records one branching decision: node Node was split on integer
// variable IntVars[KVar] at integer value Floor into the Down child
// (x <= Floor) and the Up child (x >= Floor+1). Child boxes are never
// stored; the verifier re-derives them by walking the tree from the root
// box, so a corrupted branch cannot silently shrink the claimed coverage.
type Branch struct {
	Node  int     `json:"node"`
	KVar  int     `json:"kvar"`
	Floor float64 `json:"floor"`
	Down  int     `json:"down"`
	Up    int     `json:"up"`
}

// Leaf records one fathomed subproblem of the branch tree. Dual indexes
// into Certificate.Duals (-1 for KindLatticeEmpty). Nodes pruned before
// their own LP was solved reference their parent's dual vector: a parent
// bound restricted to a child box only gets tighter, so the proof transfers.
type Leaf struct {
	Node int    `json:"node"`
	Kind string `json:"kind"`
	Dual int    `json:"dual"`
}

// Certificate is a machine-checkable proof of optimality (or integer
// infeasibility) for one branch-and-bound solve. It is self-contained: the
// instance is embedded, so the verifier needs no access to the solver or
// the original model.
type Certificate struct {
	Version int    `json:"version"`
	Sense   string `json:"sense"`  // "maximize" or "minimize"
	Status  string `json:"status"` // StatusOptimal or StatusInfeasible

	Vars []Var `json:"vars"`
	Rows []Row `json:"rows"`
	// IntVars lists the integer-constrained variable indices in the
	// solver's branching order; Branch.KVar indexes into it.
	IntVars []int `json:"intVars"`

	// X is the certified incumbent (StatusOptimal only), one value per
	// variable; integer entries are exactly integral.
	X []float64 `json:"x,omitempty"`
	// Objective is the incumbent objective in the problem's sense.
	Objective float64 `json:"objective"`
	// GapSlack is the absolute maximize-form slack allowed on every bound
	// leaf: the certificate proves no integer point beats the incumbent by
	// more than GapSlack. It covers the solver's relative gap tolerance
	// plus float headroom for the kernel-extracted dual vectors.
	GapSlack float64 `json:"gapSlack"`
	// FeasTol is the relative primal feasibility tolerance applied to the
	// incumbent's row activities and bounds (integrality is checked
	// exactly).
	FeasTol float64 `json:"feasTol"`

	Branches []Branch    `json:"branches,omitempty"`
	Leaves   []Leaf      `json:"leaves"`
	Duals    [][]float64 `json:"duals,omitempty"`
}
