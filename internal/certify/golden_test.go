package certify_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"secmon/internal/certify"
	"secmon/internal/ilp"
	"secmon/internal/lp"
)

// Regenerate the golden certificate after an intentional format change with:
//
//	go test ./internal/certify -run TestGoldenCertificate -update
var updateGolden = flag.Bool("update", false, "rewrite the golden certificate")

const goldenPath = "testdata/golden/knapsack-cert.json"

// goldenProblem is a fixed fractional knapsack whose search tree — and
// therefore whose emitted certificate — is deterministic under the pinned
// solver configuration.
func goldenProblem(t *testing.T) *ilp.Problem {
	t.Helper()
	p := ilp.NewProblem(lp.Maximize)
	vals := []float64{9, 7, 6, 5, 3}
	wts := []float64{5, 4, 3.5, 3, 1.5}
	terms := make([]lp.Term, 0, len(vals))
	for i, v := range vals {
		x, err := p.AddBinaryVariable("x", v)
		if err != nil {
			t.Fatalf("add var: %v", err)
		}
		terms = append(terms, lp.Term{Var: x, Coeff: wts[i]})
	}
	if _, err := p.AddConstraint("cap", terms, lp.LE, 8); err != nil {
		t.Fatalf("add constraint: %v", err)
	}
	return p
}

// TestGoldenCertificate pins the certificate JSON schema byte-for-byte,
// following the E1–E8 golden flow: GOMAXPROCS(1), the dense oracle kernel,
// and the face dive disabled, so the tree (and every float in the proof) is
// reproducible. Certificates carry no wall-clock content, so no scrubbing
// beyond the pinning is needed.
func TestGoldenCertificate(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	prevKernel := lp.SetDefaultKernel(lp.KernelDense)
	defer lp.SetDefaultKernel(prevKernel)
	prevDive := ilp.SetFaceDive(false)
	defer ilp.SetFaceDive(prevDive)

	sol, err := goldenProblem(t).Solve(ilp.WithCertificate(), ilp.WithWorkers(1))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Certificate == nil {
		t.Fatalf("no certificate: %s", sol.CertificateNote)
	}
	if _, err := certify.Verify(sol.Certificate); err != nil {
		t.Fatalf("verify: %v", err)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sol.Certificate); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := buf.Bytes()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("certificate JSON drifted from golden %s; rerun with -update if intentional\ngot:\n%s", goldenPath, got)
	}

	// The golden file itself must round-trip through the verifier: the
	// committed schema is a valid proof, not just frozen bytes.
	var c certify.Certificate
	if err := json.Unmarshal(want, &c); err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if _, err := certify.Verify(&c); err != nil {
		t.Fatalf("golden certificate rejected: %v", err)
	}
}
