package stress

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"secmon/internal/ilp"
	"secmon/internal/lp"
)

// stressN is the number of seeded instances checked per family. The default
// keeps plain `go test ./...` fast; `make stress` raises it to the full
// acceptance sweep.
var stressN = flag.Int("stress.n", 40, "seeded instances per family")

// failureDir is where failing instances are dumped as reproducible JSON
// seed files; TestReplayFailures replays anything found there.
const failureDir = "testdata/failures"

// dumpFailure writes the failing instance description to a seed file so the
// exact case replays without rerunning the sweep.
func dumpFailure(t *testing.T, in *Instance, cause error) {
	t.Helper()
	if err := os.MkdirAll(failureDir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", failureDir, err)
		return
	}
	name := filepath.Join(failureDir, fmt.Sprintf("%s-seed%d.json", in.Family, in.Seed))
	body, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		t.Logf("cannot marshal failing instance: %v", err)
		return
	}
	if err := os.WriteFile(name, body, 0o644); err != nil {
		t.Logf("cannot write %s: %v", name, err)
		return
	}
	t.Logf("failing instance dumped to %s", name)
}

func TestStressFamilies(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			for i := 0; i < *stressN; i++ {
				seed := int64(i) + 1
				in := Generate(fam, seed)
				if err := CheckInstance(in); err != nil {
					dumpFailure(t, in, err)
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestMetamorphicMatrix runs the metamorphic relations across the solver
// configuration matrix: sequential and 4-worker search, sparse and dense
// kernels. Fewer seeds per cell than TestStressFamilies since each check
// performs five certified solves.
func TestMetamorphicMatrix(t *testing.T) {
	n := *stressN / 4
	if n < 5 {
		n = 5
	}
	for _, workers := range []int{1, 4} {
		for _, kernel := range []lp.Kernel{lp.KernelSparse, lp.KernelDense} {
			workers, kernel := workers, kernel
			t.Run(fmt.Sprintf("workers=%d/kernel=%v", workers, kernel), func(t *testing.T) {
				opts := []ilp.Option{ilp.WithWorkers(workers), ilp.WithKernel(kernel)}
				for _, fam := range Families() {
					for i := 0; i < n; i++ {
						seed := int64(i) + 1
						in := Generate(fam, seed)
						if err := CheckMetamorphic(in, opts...); err != nil {
							dumpFailure(t, in, err)
							t.Fatalf("%s seed %d: %v", fam, seed, err)
						}
					}
				}
			})
		}
	}
}

// TestReplayFailures re-runs any instance previously dumped by a failing
// sweep, making red runs reproducible without the original seed count.
func TestReplayFailures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(failureDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Skip("no dumped failures to replay")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			body, err := os.ReadFile(f)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			var in Instance
			if err := json.Unmarshal(body, &in); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := CheckInstance(&in); err != nil {
				t.Fatalf("still failing: %v", err)
			}
		})
	}
}

// TestGenerateDeterministic pins the reproducibility contract: the same
// (family, seed) pair always yields the same instance.
func TestGenerateDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a, _ := json.Marshal(Generate(fam, 42))
		b, _ := json.Marshal(Generate(fam, 42))
		if string(a) != string(b) {
			t.Fatalf("%s: generation is not deterministic", fam)
		}
	}
}

// TestTransformsPreserveShape sanity-checks the transform helpers on one
// instance per family.
func TestTransformsPreserveShape(t *testing.T) {
	for _, fam := range Families() {
		in := Generate(fam, 3)
		p := Permute(in, 9)
		if len(p.Cost) != len(in.Cost) || len(p.Rows) != len(in.Rows) {
			t.Fatalf("%s: permute changed shape", fam)
		}
		s := ScaleCosts(in, 2)
		if s.Cost[0] != 2*in.Cost[0] {
			t.Fatalf("%s: scale did not double cost", fam)
		}
		if g := AddBonusVar(in, 5); len(g.Cost) != len(in.Cost)+1 {
			t.Fatalf("%s: bonus var not added", fam)
		}
		if tt := TightenFirstLE(in, 0.5); tt == nil {
			t.Fatalf("%s: no LE row to tighten", fam)
		}
	}
}
