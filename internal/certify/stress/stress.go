// Package stress generates seeded random ILP instances and drives the
// certificate verifier and a metamorphic test harness over them.
//
// Four instance families target distinct solver behaviors:
//
//   - feasible: random knapsacks whose LP relaxation is fractional, so the
//     search genuinely branches and fathoms by bound;
//   - infeasible: knapsacks with a decisively unsatisfiable covering row
//     (violated by at least 0.5), exercising Farkas certificates;
//   - degenerate: duplicated columns and tied costs, exercising dual
//     degeneracy and tie-breaking;
//   - lp-tight: unit weights with an integral capacity, so the root LP
//     optimum is already integral and certificates close at the root.
//
// Every instance is a pure value (Instance) rebuilt into a fresh
// *ilp.Problem per solve, which is what lets the metamorphic transforms in
// this package (permutation, cost scaling, budget tightening, variable
// addition) operate on the description rather than on solver state.
// Generation is seeded: Generate(family, seed) is deterministic, so a
// failing instance is reproducible from its (family, seed) pair alone.
package stress

import (
	"fmt"
	"math/rand"

	"secmon/internal/ilp"
	"secmon/internal/lp"
)

// Family names one of the generated instance families.
type Family string

// The generated instance families.
const (
	FamilyFeasible   Family = "feasible"
	FamilyInfeasible Family = "infeasible"
	FamilyDegenerate Family = "degenerate"
	FamilyLPTight    Family = "lp-tight"
)

// Families lists every generated family, in a fixed order.
func Families() []Family {
	return []Family{FamilyFeasible, FamilyInfeasible, FamilyDegenerate, FamilyLPTight}
}

// Term is one nonzero coefficient of a row, by variable index.
type Term struct {
	Var   int     `json:"v"`
	Coeff float64 `json:"c"`
}

// RowSpec is one linear constraint of an instance.
type RowSpec struct {
	Name  string  `json:"name,omitempty"`
	Terms []Term  `json:"terms"`
	Op    lp.Op   `json:"op"`
	RHS   float64 `json:"rhs"`
}

// Instance is a self-contained, JSON-serializable ILP description. The
// Family and Seed fields identify how it was generated (or transformed) so
// dumped failures replay exactly.
type Instance struct {
	Family   Family    `json:"family"`
	Seed     int64     `json:"seed"`
	Note     string    `json:"note,omitempty"`
	Maximize bool      `json:"maximize"`
	Cost     []float64 `json:"cost"`
	Lo       []float64 `json:"lo"`
	Hi       []float64 `json:"hi"`
	Integer  []bool    `json:"integer"`
	Rows     []RowSpec `json:"rows"`
}

// Build assembles a fresh solver problem from the description. Problems are
// single-use; call Build once per solve.
func (in *Instance) Build() (*ilp.Problem, error) {
	sense := lp.Minimize
	if in.Maximize {
		sense = lp.Maximize
	}
	p := ilp.NewProblem(sense)
	ids := make([]lp.VarID, len(in.Cost))
	for j := range in.Cost {
		var (
			id  lp.VarID
			err error
		)
		name := fmt.Sprintf("x%d", j)
		if in.Integer[j] {
			id, err = p.AddIntegerVariable(name, in.Lo[j], in.Hi[j], in.Cost[j])
		} else {
			id, err = p.AddVariable(name, in.Lo[j], in.Hi[j], in.Cost[j])
		}
		if err != nil {
			return nil, fmt.Errorf("stress: add variable %d: %w", j, err)
		}
		ids[j] = id
	}
	for i, row := range in.Rows {
		terms := make([]lp.Term, len(row.Terms))
		for k, tm := range row.Terms {
			if tm.Var < 0 || tm.Var >= len(ids) {
				return nil, fmt.Errorf("stress: row %d references variable %d", i, tm.Var)
			}
			terms[k] = lp.Term{Var: ids[tm.Var], Coeff: tm.Coeff}
		}
		name := row.Name
		if name == "" {
			name = fmt.Sprintf("r%d", i)
		}
		if _, err := p.AddConstraint(name, terms, row.Op, row.RHS); err != nil {
			return nil, fmt.Errorf("stress: add row %d: %w", i, err)
		}
	}
	return p, nil
}

// Generate builds the seeded random instance of the given family.
// Unknown families panic: callers enumerate Families().
func Generate(family Family, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed*1_000_003 + int64(len(family))))
	switch family {
	case FamilyFeasible:
		return genFeasible(family, seed, r)
	case FamilyInfeasible:
		return genInfeasible(family, seed, r)
	case FamilyDegenerate:
		return genDegenerate(family, seed, r)
	case FamilyLPTight:
		return genLPTight(family, seed, r)
	default:
		panic(fmt.Sprintf("stress: unknown family %q", family))
	}
}

// newBinaryInstance sets up n binary variables with the given objective
// coefficients.
func newBinaryInstance(family Family, seed int64, cost []float64) *Instance {
	n := len(cost)
	in := &Instance{
		Family:   family,
		Seed:     seed,
		Maximize: true,
		Cost:     cost,
		Lo:       make([]float64, n),
		Hi:       make([]float64, n),
		Integer:  make([]bool, n),
	}
	for j := 0; j < n; j++ {
		in.Hi[j] = 1
		in.Integer[j] = true
	}
	return in
}

// genFeasible is a random 0/1 knapsack (occasionally two resource rows)
// whose capacity is an interior fraction of the total weight, so the LP
// optimum is almost always fractional.
func genFeasible(family Family, seed int64, r *rand.Rand) *Instance {
	n := 3 + r.Intn(8)
	cost := make([]float64, n)
	for j := range cost {
		cost[j] = 1 + 9*r.Float64()
	}
	in := newBinaryInstance(family, seed, cost)
	nRows := 1
	if r.Float64() < 0.3 {
		nRows = 2
	}
	for i := 0; i < nRows; i++ {
		terms := make([]Term, n)
		total := 0.0
		for j := 0; j < n; j++ {
			w := 0.5 + 9.5*r.Float64()
			terms[j] = Term{Var: j, Coeff: w}
			total += w
		}
		cap := total * (0.3 + 0.4*r.Float64())
		in.Rows = append(in.Rows, RowSpec{Terms: terms, Op: lp.LE, RHS: cap})
	}
	return in
}

// genInfeasible layers a decisively unsatisfiable requirement over a
// feasible knapsack: either a covering row demanding strictly more than
// every variable at its upper bound provides (margin >= 0.5), or an
// equality pinned beyond reach.
func genInfeasible(family Family, seed int64, r *rand.Rand) *Instance {
	in := genFeasible(family, seed, r)
	n := len(in.Cost)
	terms := make([]Term, n)
	for j := 0; j < n; j++ {
		terms[j] = Term{Var: j, Coeff: 1}
	}
	margin := 0.5 + 2*r.Float64()
	if r.Float64() < 0.5 {
		in.Rows = append(in.Rows, RowSpec{Name: "impossible", Terms: terms, Op: lp.GE, RHS: float64(n) + margin})
	} else {
		in.Rows = append(in.Rows, RowSpec{Name: "impossible", Terms: terms, Op: lp.EQ, RHS: float64(n) + margin})
	}
	return in
}

// genDegenerate duplicates a handful of (value, weight) column templates
// several times each and quantizes everything, creating heavy objective and
// basis ties.
func genDegenerate(family Family, seed int64, r *rand.Rand) *Instance {
	templates := 2 + r.Intn(3)
	copies := 2 + r.Intn(2)
	var cost []float64
	var weight []float64
	for t := 0; t < templates; t++ {
		v := float64(1 + r.Intn(6))
		w := float64(1 + r.Intn(4))
		for c := 0; c < copies; c++ {
			cost = append(cost, v)
			weight = append(weight, w)
		}
	}
	in := newBinaryInstance(family, seed, cost)
	n := len(cost)
	terms := make([]Term, n)
	total := 0.0
	for j := 0; j < n; j++ {
		terms[j] = Term{Var: j, Coeff: weight[j]}
		total += weight[j]
	}
	// An integer capacity at roughly half the total weight keeps many tied
	// optimal vertices.
	in.Rows = append(in.Rows, RowSpec{Terms: terms, Op: lp.LE, RHS: float64(int(total / 2))})
	if r.Float64() < 0.5 {
		// Pin the first template's copies to an exact count, adding an
		// equality row to the mix.
		k := copies / 2
		eq := make([]Term, copies)
		for c := 0; c < copies; c++ {
			eq[c] = Term{Var: c, Coeff: 1}
		}
		in.Rows = append(in.Rows, RowSpec{Name: "pin", Terms: eq, Op: lp.EQ, RHS: float64(k)})
	}
	return in
}

// genLPTight uses unit weights and an integral capacity, so the LP
// relaxation optimum is integral at the root and the certificate closes
// without branching.
func genLPTight(family Family, seed int64, r *rand.Rand) *Instance {
	n := 4 + r.Intn(8)
	cost := make([]float64, n)
	for j := range cost {
		// Distinct values avoid fractional ties at the capacity boundary.
		cost[j] = float64(j+1) + r.Float64()*0.25
	}
	in := newBinaryInstance(family, seed, cost)
	terms := make([]Term, n)
	for j := 0; j < n; j++ {
		terms[j] = Term{Var: j, Coeff: 1}
	}
	k := 1 + r.Intn(n-1)
	in.Rows = append(in.Rows, RowSpec{Terms: terms, Op: lp.LE, RHS: float64(k)})
	return in
}
