package stress

import (
	"encoding/json"
	"testing"

	"secmon/internal/certify"
)

// FuzzCertifiedSolve fuzzes the (family, seed) space: every generated
// instance must solve to a proven status whose certificate passes the
// independent verifier.
func FuzzCertifiedSolve(f *testing.F) {
	for i, fam := range Families() {
		f.Add(int(i), int64(1))
		f.Add(int(i), int64(97))
		_ = fam
	}
	fams := Families()
	f.Fuzz(func(t *testing.T, famIdx int, seed int64) {
		if famIdx < 0 || famIdx >= len(fams) {
			t.Skip("family index out of range")
		}
		in := Generate(fams[famIdx], seed)
		if err := CheckInstance(in); err != nil {
			t.Fatalf("%s seed %d: %v", fams[famIdx], seed, err)
		}
	})
}

// FuzzVerifyJSON fuzzes the verifier's input surface: arbitrary certificate
// JSON must never panic Verify — malformed proofs are rejected with an
// error, not a crash.
func FuzzVerifyJSON(f *testing.F) {
	// Seed with a genuine certificate so mutations explore near-valid space.
	in := Generate(FamilyFeasible, 1)
	if sol, err := SolveCertified(in); err == nil {
		if body, err := json.Marshal(sol.Certificate); err == nil {
			f.Add(body)
		}
	}
	f.Add([]byte(`{"version":1,"sense":"maximize","status":"optimal"}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		var c certify.Certificate
		if err := json.Unmarshal(body, &c); err != nil {
			t.Skip("not certificate JSON")
		}
		// Verification may fail — it must simply never panic.
		_, _ = certify.Verify(&c)
	})
}
