package stress

import (
	"fmt"
	"math"
	"math/rand"

	"secmon/internal/certify"
	"secmon/internal/ilp"
	"secmon/internal/lp"
)

// enumerateLimit bounds the exhaustive cross-check: instances with more
// binary variables than this skip the enumeration comparison.
const enumerateLimit = 12

// objTol is the comparison slack for optimal objectives across equivalent
// solves, relative to the objective's magnitude.
func objTol(v float64) float64 { return 1e-6 * (1 + math.Abs(v)) }

// SolveCertified builds the instance, solves it with certification on top
// of the given solver options, and runs the independent verifier over the
// emitted certificate. The solve must end proven (optimal or infeasible).
func SolveCertified(in *Instance, opts ...ilp.Option) (*ilp.Solution, error) {
	p, err := in.Build()
	if err != nil {
		return nil, err
	}
	sol, err := p.Solve(append([]ilp.Option{ilp.WithCertificate()}, opts...)...)
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}
	if sol.Status != ilp.StatusOptimal && sol.Status != ilp.StatusInfeasible {
		return nil, fmt.Errorf("solve ended %v, want a proven status", sol.Status)
	}
	if sol.Certificate == nil {
		return nil, fmt.Errorf("no certificate on status %v: %s", sol.Status, sol.CertificateNote)
	}
	rep, err := certify.Verify(sol.Certificate)
	if err != nil {
		return nil, fmt.Errorf("certificate rejected: %w", err)
	}
	wantStatus := certify.StatusOptimal
	if sol.Status == ilp.StatusInfeasible {
		wantStatus = certify.StatusInfeasible
	}
	if rep.Status != wantStatus {
		return nil, fmt.Errorf("certificate status %q, solver status %v", rep.Status, sol.Status)
	}
	return sol, nil
}

// CheckInstance certifies one instance and cross-checks it against the
// family's expected status and, for small instances, exhaustive enumeration.
func CheckInstance(in *Instance, opts ...ilp.Option) error {
	sol, err := SolveCertified(in, opts...)
	if err != nil {
		return err
	}
	wantInfeasible := in.Family == FamilyInfeasible
	if gotInfeasible := sol.Status == ilp.StatusInfeasible; gotInfeasible != wantInfeasible {
		return fmt.Errorf("status %v, family %s expects infeasible=%v", sol.Status, in.Family, wantInfeasible)
	}
	if sol.Status == ilp.StatusOptimal && len(in.Cost) <= enumerateLimit {
		p, err := in.Build()
		if err != nil {
			return err
		}
		ref, err := p.Enumerate()
		if err != nil {
			return fmt.Errorf("enumerate: %w", err)
		}
		if math.Abs(ref.Objective-sol.Objective) > objTol(ref.Objective) {
			return fmt.Errorf("certified objective %v != enumerated %v", sol.Objective, ref.Objective)
		}
	}
	return nil
}

// Permute returns the instance with variables renumbered by a seeded random
// permutation and rows (and each row's terms) shuffled. The optimal
// objective is invariant under this transform.
func Permute(in *Instance, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	n := len(in.Cost)
	perm := r.Perm(n) // perm[old] = new index
	out := &Instance{
		Family:   in.Family,
		Seed:     in.Seed,
		Note:     fmt.Sprintf("%s permuted seed=%d", in.Note, seed),
		Maximize: in.Maximize,
		Cost:     make([]float64, n),
		Lo:       make([]float64, n),
		Hi:       make([]float64, n),
		Integer:  make([]bool, n),
	}
	for j := 0; j < n; j++ {
		out.Cost[perm[j]] = in.Cost[j]
		out.Lo[perm[j]] = in.Lo[j]
		out.Hi[perm[j]] = in.Hi[j]
		out.Integer[perm[j]] = in.Integer[j]
	}
	rowOrder := r.Perm(len(in.Rows))
	out.Rows = make([]RowSpec, len(in.Rows))
	for i, row := range in.Rows {
		terms := make([]Term, len(row.Terms))
		for k, tm := range row.Terms {
			terms[k] = Term{Var: perm[tm.Var], Coeff: tm.Coeff}
		}
		r.Shuffle(len(terms), func(a, b int) { terms[a], terms[b] = terms[b], terms[a] })
		out.Rows[rowOrder[i]] = RowSpec{Name: row.Name, Terms: terms, Op: row.Op, RHS: row.RHS}
	}
	return out
}

// ScaleCosts multiplies every objective coefficient by lambda > 0; the
// optimal objective scales by exactly lambda and feasibility is unchanged.
func ScaleCosts(in *Instance, lambda float64) *Instance {
	out := *in
	out.Note = fmt.Sprintf("%s costs scaled by %g", in.Note, lambda)
	out.Cost = make([]float64, len(in.Cost))
	for j, c := range in.Cost {
		out.Cost[j] = lambda * c
	}
	return &out
}

// TightenFirstLE scales the first <=-row's RHS by factor in (0, 1); for a
// maximize instance the optimum cannot increase (it may become infeasible).
// Returns nil when the instance has no <= row.
func TightenFirstLE(in *Instance, factor float64) *Instance {
	for i, row := range in.Rows {
		if row.Op != lp.LE {
			continue
		}
		out := *in
		out.Note = fmt.Sprintf("%s row %d tightened by %g", in.Note, i, factor)
		out.Rows = append([]RowSpec(nil), in.Rows...)
		r := out.Rows[i]
		r.RHS *= factor
		out.Rows[i] = r
		return &out
	}
	return nil
}

// AddBonusVar appends one new binary variable with positive objective
// value, consuming capacity only in <=-rows. Every previously feasible
// solution stays feasible with the new variable at 0, so a maximize
// optimum cannot decrease.
func AddBonusVar(in *Instance, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed ^ 0x2545F4914F6CDD1D))
	n := len(in.Cost)
	out := *in
	out.Note = fmt.Sprintf("%s plus bonus var", in.Note)
	out.Cost = append(append([]float64(nil), in.Cost...), 0.5+2*r.Float64())
	out.Lo = append(append([]float64(nil), in.Lo...), 0)
	out.Hi = append(append([]float64(nil), in.Hi...), 1)
	out.Integer = append(append([]bool(nil), in.Integer...), true)
	out.Rows = make([]RowSpec, len(in.Rows))
	for i, row := range in.Rows {
		terms := append([]Term(nil), row.Terms...)
		if row.Op == lp.LE {
			terms = append(terms, Term{Var: n, Coeff: 0.5 + 3*r.Float64()})
		}
		out.Rows[i] = RowSpec{Name: row.Name, Terms: terms, Op: row.Op, RHS: row.RHS}
	}
	return &out
}

// CheckMetamorphic certifies the instance and every metamorphic variant and
// checks the relations between their optima:
//
//   - permutation invariance: identical status and objective;
//   - cost scaling by lambda: objective scales by exactly lambda;
//   - budget tightening: the optimum never increases (infeasible counts as
//     decreased);
//   - variable addition: the optimum never decreases.
//
// The monotonicity checks are skipped for infeasible instances, where both
// sides are vacuous.
func CheckMetamorphic(in *Instance, opts ...ilp.Option) error {
	base, err := SolveCertified(in, opts...)
	if err != nil {
		return fmt.Errorf("base: %w", err)
	}

	perm, err := SolveCertified(Permute(in, in.Seed+7), opts...)
	if err != nil {
		return fmt.Errorf("permuted: %w", err)
	}
	if perm.Status != base.Status {
		return fmt.Errorf("permuted status %v != base %v", perm.Status, base.Status)
	}
	if base.Status == ilp.StatusOptimal && math.Abs(perm.Objective-base.Objective) > objTol(base.Objective) {
		return fmt.Errorf("permuted objective %v != base %v", perm.Objective, base.Objective)
	}

	lambda := 0.5 + float64(in.Seed%7)/2 // in [0.5, 3.5], seed-determined
	scaled, err := SolveCertified(ScaleCosts(in, lambda), opts...)
	if err != nil {
		return fmt.Errorf("scaled: %w", err)
	}
	if scaled.Status != base.Status {
		return fmt.Errorf("scaled status %v != base %v", scaled.Status, base.Status)
	}
	if base.Status == ilp.StatusOptimal {
		want := lambda * base.Objective
		if math.Abs(scaled.Objective-want) > objTol(want) {
			return fmt.Errorf("scaled objective %v, want %v (lambda %g)", scaled.Objective, want, lambda)
		}
	}

	if base.Status != ilp.StatusOptimal {
		return nil
	}

	if tight := TightenFirstLE(in, 0.6); tight != nil {
		sol, err := SolveCertified(tight, opts...)
		if err != nil {
			return fmt.Errorf("tightened: %w", err)
		}
		if sol.Status == ilp.StatusOptimal && sol.Objective > base.Objective+objTol(base.Objective) {
			return fmt.Errorf("tightened objective %v exceeds base %v", sol.Objective, base.Objective)
		}
	}

	grown, err := SolveCertified(AddBonusVar(in, in.Seed+13), opts...)
	if err != nil {
		return fmt.Errorf("grown: %w", err)
	}
	if grown.Status != ilp.StatusOptimal {
		return fmt.Errorf("grown status %v, want optimal", grown.Status)
	}
	if grown.Objective < base.Objective-objTol(base.Objective) {
		return fmt.Errorf("grown objective %v below base %v", grown.Objective, base.Objective)
	}
	return nil
}
