package certify

import (
	"fmt"
	"math"
	"math/big"
)

// Report summarizes a successful verification.
type Report struct {
	// Status echoes the certified claim: "optimal" or "infeasible".
	Status string `json:"status"`
	// Objective echoes the certified objective (problem sense); meaningful
	// for StatusOptimal.
	Objective float64 `json:"objective"`
	// GapSlack echoes the absolute maximize-form slack the optimality
	// claim carries: no integer point beats the incumbent by more.
	GapSlack float64 `json:"gapSlack"`
	// Branches and Leaves count the verified tree nodes; BoundLeaves,
	// InfeasibleLeaves and EmptyLeaves split Leaves by proof kind.
	Branches         int `json:"branches"`
	Leaves           int `json:"leaves"`
	BoundLeaves      int `json:"boundLeaves"`
	InfeasibleLeaves int `json:"infeasibleLeaves"`
	EmptyLeaves      int `json:"emptyLeaves"`
	// DualVectors counts the distinct dual vectors in the pool.
	DualVectors int `json:"dualVectors"`
}

// Verify checks a certificate end to end with exact rational arithmetic and
// returns a non-nil error describing the first violated condition. It never
// runs a simplex solve: every leaf bound is a direct evaluation of the
// weak-duality inequality documented on the package.
//
// A nil error means, exactly:
//   - StatusOptimal: X is feasible (within FeasTol, integrality exact) with
//     objective Objective, and no point of the instance whose IntVars take
//     integer values has a maximize-form objective exceeding X's by more
//     than GapSlack.
//   - StatusInfeasible: no point of the instance has all IntVars integral
//     and all rows satisfied.
func Verify(c *Certificate) (*Report, error) {
	if c == nil {
		return nil, fmt.Errorf("certify: nil certificate")
	}
	if c.Version != Version {
		return nil, fmt.Errorf("certify: unsupported version %d (want %d)", c.Version, Version)
	}
	v, err := newVerifier(c)
	if err != nil {
		return nil, err
	}
	if err := v.checkPrimal(); err != nil {
		return nil, err
	}
	rep, err := v.checkTree()
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// verifier holds the exact-rational view of one certificate.
type verifier struct {
	c        *Certificate
	maximize bool

	objMax []*big.Rat // per variable: maximize-form objective coefficient
	lo, hi []*big.Rat // per variable: original bounds, nil = infinite
	rows   []exRow

	intSet map[int]bool // variable index -> is in IntVars

	rootLo, rootHi []*big.Int // per IntVars entry, nil = infinite

	gapSlack, feasTol *big.Rat
	incMax            *big.Rat // exact maximize-form objective of X (optimal only)

	dualCache map[dualKey]*dualEval
}

type exRow struct {
	terms []exTerm
	op    string
	rhs   *big.Rat
}

type exTerm struct {
	j int
	a *big.Rat
}

// dualKey selects one cached dual evaluation: the vector index and whether
// the objective is included (bound leaves) or zeroed (infeasibility leaves).
type dualKey struct {
	idx    int
	farkas bool
}

// dualEval caches the leaf-box-independent parts of the weak-duality bound
// for one dual vector: base = y·b + continuous sup terms, and dInt = the
// reduced objective d restricted to the integer variables. A non-nil err
// poisons every leaf referencing the vector (e.g. wrong dual signs or an
// unbounded continuous sup).
type dualEval struct {
	base *big.Rat
	dInt []*big.Rat
	err  error
}

func newVerifier(c *Certificate) (*verifier, error) {
	v := &verifier{c: c, dualCache: make(map[dualKey]*dualEval)}
	switch c.Sense {
	case "maximize":
		v.maximize = true
	case "minimize":
		v.maximize = false
	default:
		return nil, fmt.Errorf("certify: unknown sense %q", c.Sense)
	}
	if c.Status != StatusOptimal && c.Status != StatusInfeasible {
		return nil, fmt.Errorf("certify: unknown status %q", c.Status)
	}

	n := len(c.Vars)
	v.objMax = make([]*big.Rat, n)
	v.lo = make([]*big.Rat, n)
	v.hi = make([]*big.Rat, n)
	for j, vr := range c.Vars {
		o, err := ratOf(vr.Obj)
		if err != nil {
			return nil, fmt.Errorf("certify: var %d objective: %w", j, err)
		}
		if !v.maximize {
			o.Neg(o)
		}
		v.objMax[j] = o
		if vr.Lo != nil {
			if v.lo[j], err = ratOf(*vr.Lo); err != nil {
				return nil, fmt.Errorf("certify: var %d lower bound: %w", j, err)
			}
		}
		if vr.Hi != nil {
			if v.hi[j], err = ratOf(*vr.Hi); err != nil {
				return nil, fmt.Errorf("certify: var %d upper bound: %w", j, err)
			}
		}
		if v.lo[j] != nil && v.hi[j] != nil && v.lo[j].Cmp(v.hi[j]) > 0 {
			return nil, fmt.Errorf("certify: var %d has empty bounds [%v, %v]", j, *vr.Lo, *vr.Hi)
		}
	}

	v.rows = make([]exRow, len(c.Rows))
	for i, r := range c.Rows {
		if r.Op != OpLE && r.Op != OpGE && r.Op != OpEQ {
			return nil, fmt.Errorf("certify: row %d has unknown op %q", i, r.Op)
		}
		rhs, err := ratOf(r.RHS)
		if err != nil {
			return nil, fmt.Errorf("certify: row %d rhs: %w", i, err)
		}
		terms := make([]exTerm, 0, len(r.Terms))
		for _, t := range r.Terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("certify: row %d references variable %d of %d", i, t.Var, n)
			}
			a, err := ratOf(t.Coeff)
			if err != nil {
				return nil, fmt.Errorf("certify: row %d coefficient: %w", i, err)
			}
			if a.Sign() != 0 {
				terms = append(terms, exTerm{j: t.Var, a: a})
			}
		}
		v.rows[i] = exRow{terms: terms, op: r.Op, rhs: rhs}
	}

	v.intSet = make(map[int]bool, len(c.IntVars))
	v.rootLo = make([]*big.Int, len(c.IntVars))
	v.rootHi = make([]*big.Int, len(c.IntVars))
	for k, j := range c.IntVars {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("certify: intVars[%d]=%d out of range", k, j)
		}
		if !c.Vars[j].Integer {
			return nil, fmt.Errorf("certify: intVars[%d]=%d is not marked integer", k, j)
		}
		if v.intSet[j] {
			return nil, fmt.Errorf("certify: variable %d listed twice in intVars", j)
		}
		v.intSet[j] = true
		// The root integer box is derived, never trusted: exactly the
		// integer points of the original bounds.
		if v.lo[j] != nil {
			v.rootLo[k] = ceilRat(v.lo[j])
		}
		if v.hi[j] != nil {
			v.rootHi[k] = floorRat(v.hi[j])
		}
	}

	var err error
	if v.gapSlack, err = ratOf(c.GapSlack); err != nil || v.gapSlack.Sign() < 0 {
		return nil, fmt.Errorf("certify: invalid gapSlack %v", c.GapSlack)
	}
	if v.feasTol, err = ratOf(c.FeasTol); err != nil || v.feasTol.Sign() < 0 {
		return nil, fmt.Errorf("certify: invalid feasTol %v", c.FeasTol)
	}

	for i, y := range c.Duals {
		if len(y) != len(c.Rows) {
			return nil, fmt.Errorf("certify: dual vector %d has %d entries for %d rows", i, len(y), len(c.Rows))
		}
	}
	return v, nil
}

// checkPrimal verifies the incumbent: presence matching the status, exact
// integrality, bounds and row activities within FeasTol, and the reported
// objective. It also records the exact maximize-form incumbent objective
// for the leaf bound comparisons.
func (v *verifier) checkPrimal() error {
	c := v.c
	if c.Status == StatusInfeasible {
		if len(c.X) != 0 {
			return fmt.Errorf("certify: infeasible certificate carries a solution vector")
		}
		return nil
	}
	if len(c.X) != len(c.Vars) {
		return fmt.Errorf("certify: solution has %d entries for %d variables", len(c.X), len(c.Vars))
	}
	one := big.NewRat(1, 1)
	x := make([]*big.Rat, len(c.X))
	for j, xv := range c.X {
		r, err := ratOf(xv)
		if err != nil {
			return fmt.Errorf("certify: x[%d]: %w", j, err)
		}
		x[j] = r
		if c.Vars[j].Integer && !r.IsInt() {
			return fmt.Errorf("certify: integer variable %d (%s) has fractional value %v",
				j, c.Vars[j].Name, xv)
		}
		// Bound tolerance scales with the bound magnitude so large-valued
		// instances are not held to an absolute epsilon.
		if v.lo[j] != nil {
			tol := scaledTol(v.feasTol, one, v.lo[j])
			if new(big.Rat).Add(r, tol).Cmp(v.lo[j]) < 0 {
				return fmt.Errorf("certify: x[%d]=%v violates lower bound %v", j, xv, *c.Vars[j].Lo)
			}
		}
		if v.hi[j] != nil {
			tol := scaledTol(v.feasTol, one, v.hi[j])
			if new(big.Rat).Sub(r, tol).Cmp(v.hi[j]) > 0 {
				return fmt.Errorf("certify: x[%d]=%v violates upper bound %v", j, xv, *c.Vars[j].Hi)
			}
		}
	}

	term := new(big.Rat)
	for i, row := range v.rows {
		act := new(big.Rat)
		scale := new(big.Rat).Set(one)
		for _, t := range row.terms {
			term.Mul(t.a, x[t.j])
			act.Add(act, term)
			scale.Add(scale, new(big.Rat).Abs(term))
		}
		tol := scaledTol(v.feasTol, scale, row.rhs)
		diff := new(big.Rat).Sub(act, row.rhs)
		switch row.op {
		case OpLE:
			if diff.Cmp(tol) > 0 {
				return fmt.Errorf("certify: row %d (%s) violated: activity exceeds rhs", i, c.Rows[i].Name)
			}
		case OpGE:
			if diff.Cmp(new(big.Rat).Neg(tol)) < 0 {
				return fmt.Errorf("certify: row %d (%s) violated: activity below rhs", i, c.Rows[i].Name)
			}
		case OpEQ:
			if diff.Abs(diff).Cmp(tol) > 0 {
				return fmt.Errorf("certify: row %d (%s) violated: activity differs from rhs", i, c.Rows[i].Name)
			}
		}
	}

	v.incMax = new(big.Rat)
	for j := range x {
		if v.objMax[j].Sign() != 0 {
			v.incMax.Add(v.incMax, term.Mul(v.objMax[j], x[j]))
			term = new(big.Rat)
		}
	}
	// The reported objective must match the exact recomputation: Objective
	// is what callers act on, so a corrupted number is rejected even though
	// the bound comparisons below use the exact value.
	reported, err := ratOf(c.Objective)
	if err != nil {
		return fmt.Errorf("certify: objective: %w", err)
	}
	if !v.maximize {
		reported.Neg(reported)
	}
	tol := scaledTol(v.feasTol, one, v.incMax)
	if new(big.Rat).Sub(reported, v.incMax).Abs(new(big.Rat).Sub(reported, v.incMax)).Cmp(tol) > 0 {
		return fmt.Errorf("certify: reported objective %v does not match the solution vector", c.Objective)
	}
	return nil
}

// checkTree walks the branch tree from the root box, re-deriving every
// node's integer box, and checks each leaf's proof. Every referenced node
// must be reached exactly once and every node reached must carry exactly
// one role (branch or leaf): together with the box derivation this is the
// coverage proof that the leaves partition the root.
func (v *verifier) checkTree() (*Report, error) {
	c := v.c
	branchAt := make(map[int]*Branch, len(c.Branches))
	for i := range c.Branches {
		b := &c.Branches[i]
		if b.KVar < 0 || b.KVar >= len(c.IntVars) {
			return nil, fmt.Errorf("certify: branch at node %d has kvar %d of %d", b.Node, b.KVar, len(c.IntVars))
		}
		f, err := ratOf(b.Floor)
		if err != nil || !f.IsInt() {
			return nil, fmt.Errorf("certify: branch at node %d has non-integer floor %v", b.Node, b.Floor)
		}
		if _, dup := branchAt[b.Node]; dup {
			return nil, fmt.Errorf("certify: node %d branched twice", b.Node)
		}
		branchAt[b.Node] = b
	}
	leafAt := make(map[int]*Leaf, len(c.Leaves))
	for i := range c.Leaves {
		l := &c.Leaves[i]
		if _, dup := leafAt[l.Node]; dup {
			return nil, fmt.Errorf("certify: node %d fathomed twice", l.Node)
		}
		if _, dup := branchAt[l.Node]; dup {
			return nil, fmt.Errorf("certify: node %d is both branched and fathomed", l.Node)
		}
		switch l.Kind {
		case KindLatticeEmpty:
			if l.Dual != -1 {
				return nil, fmt.Errorf("certify: latticeEmpty leaf %d references a dual vector", l.Node)
			}
		case KindBound, KindInfeasible:
			if l.Dual < 0 || l.Dual >= len(c.Duals) {
				return nil, fmt.Errorf("certify: leaf %d references dual vector %d of %d", l.Node, l.Dual, len(c.Duals))
			}
			if l.Kind == KindBound && c.Status == StatusInfeasible {
				return nil, fmt.Errorf("certify: infeasible certificate has a bound leaf at node %d", l.Node)
			}
		default:
			return nil, fmt.Errorf("certify: leaf %d has unknown kind %q", l.Node, l.Kind)
		}
		leafAt[l.Node] = l
	}

	rep := &Report{
		Status:      c.Status,
		Objective:   c.Objective,
		GapSlack:    c.GapSlack,
		Branches:    len(c.Branches),
		Leaves:      len(c.Leaves),
		DualVectors: len(c.Duals),
	}

	type frame struct {
		id     int
		lo, hi []*big.Int
	}
	stack := []frame{{id: 0, lo: v.rootLo, hi: v.rootHi}}
	visited := make(map[int]bool, len(branchAt)+len(leafAt))
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[f.id] {
			return nil, fmt.Errorf("certify: node %d reached twice (branch tree is not a tree)", f.id)
		}
		visited[f.id] = true

		if b, ok := branchAt[f.id]; ok {
			k := b.KVar
			fl := intOfFloat(b.Floor)
			// Down child: x_k <= floor; up child: x_k >= floor+1. The
			// children's boxes are derived by intersection, so every
			// integer point of the parent lands in exactly one child no
			// matter what the branch record claims.
			downHi := append([]*big.Int(nil), f.hi...)
			if downHi[k] == nil || downHi[k].Cmp(fl) > 0 {
				downHi[k] = fl
			}
			upLo := append([]*big.Int(nil), f.lo...)
			flp1 := new(big.Int).Add(fl, big.NewInt(1))
			if upLo[k] == nil || upLo[k].Cmp(flp1) < 0 {
				upLo[k] = flp1
			}
			stack = append(stack,
				frame{id: b.Down, lo: f.lo, hi: downHi},
				frame{id: b.Up, lo: upLo, hi: f.hi})
			continue
		}
		l, ok := leafAt[f.id]
		if !ok {
			return nil, fmt.Errorf("certify: node %d is neither branched nor fathomed (coverage hole)", f.id)
		}
		if err := v.checkLeaf(l, f.lo, f.hi, rep); err != nil {
			return nil, err
		}
	}
	if len(visited) != len(branchAt)+len(leafAt) {
		return nil, fmt.Errorf("certify: %d of %d recorded nodes are unreachable from the root",
			len(branchAt)+len(leafAt)-len(visited), len(branchAt)+len(leafAt))
	}
	return rep, nil
}

// checkLeaf verifies one leaf proof over its derived integer box.
func (v *verifier) checkLeaf(l *Leaf, lo, hi []*big.Int, rep *Report) error {
	empty := false
	for k := range lo {
		if lo[k] != nil && hi[k] != nil && lo[k].Cmp(hi[k]) > 0 {
			empty = true
			break
		}
	}
	if l.Kind == KindLatticeEmpty {
		if !empty {
			return fmt.Errorf("certify: latticeEmpty leaf %d has a non-empty integer box", l.Node)
		}
		rep.EmptyLeaves++
		return nil
	}
	if empty {
		// An empty box holds no integer point: any claim over it is
		// vacuously true, whatever the recorded dual says.
		switch l.Kind {
		case KindBound:
			rep.BoundLeaves++
		default:
			rep.InfeasibleLeaves++
		}
		return nil
	}

	farkas := l.Kind == KindInfeasible
	ev := v.dualEvalFor(l.Dual, farkas)
	if ev.err != nil {
		return fmt.Errorf("certify: leaf %d: %w", l.Node, ev.err)
	}
	u := new(big.Rat).Set(ev.base)
	term := new(big.Rat)
	for k, d := range ev.dInt {
		switch d.Sign() {
		case 0:
			continue
		case 1:
			if hi[k] == nil {
				return fmt.Errorf("certify: leaf %d bound is unbounded above (variable %d)", l.Node, v.c.IntVars[k])
			}
			u.Add(u, term.Mul(d, new(big.Rat).SetInt(hi[k])))
		case -1:
			if lo[k] == nil {
				return fmt.Errorf("certify: leaf %d bound is unbounded above (variable %d)", l.Node, v.c.IntVars[k])
			}
			u.Add(u, term.Mul(d, new(big.Rat).SetInt(lo[k])))
		}
		term = new(big.Rat)
	}

	if farkas {
		if u.Sign() >= 0 {
			return fmt.Errorf("certify: infeasibility proof at leaf %d fails: Farkas bound %s is not negative",
				l.Node, u.FloatString(9))
		}
		rep.InfeasibleLeaves++
		return nil
	}
	limit := new(big.Rat).Add(v.incMax, v.gapSlack)
	if u.Cmp(limit) > 0 {
		uf, _ := u.Float64()
		return fmt.Errorf("certify: bound proof at leaf %d fails: dual bound %g exceeds incumbent plus gap slack",
			l.Node, uf)
	}
	rep.BoundLeaves++
	return nil
}

// dualEvalFor computes (and caches) the box-independent part of the
// weak-duality bound for one dual vector and objective flavor.
func (v *verifier) dualEvalFor(idx int, farkas bool) *dualEval {
	key := dualKey{idx: idx, farkas: farkas}
	if ev, ok := v.dualCache[key]; ok {
		return ev
	}
	ev := v.buildDualEval(idx, farkas)
	v.dualCache[key] = ev
	return ev
}

func (v *verifier) buildDualEval(idx int, farkas bool) *dualEval {
	y := v.c.Duals[idx]
	n := len(v.c.Vars)

	// d starts from the maximize-form objective (zero for Farkas flavors)
	// and subtracts yᵀA; base accumulates y·b.
	d := make([]*big.Rat, n)
	for j := 0; j < n; j++ {
		if farkas {
			d[j] = new(big.Rat)
		} else {
			d[j] = new(big.Rat).Set(v.objMax[j])
		}
	}
	base := new(big.Rat)
	term := new(big.Rat)
	for i, yi := range y {
		yr, err := ratOf(yi)
		if err != nil {
			return &dualEval{err: fmt.Errorf("dual vector %d entry %d: %w", idx, i, err)}
		}
		sign := yr.Sign()
		if sign == 0 {
			continue
		}
		// Sign validity: y_i >= 0 for <= rows, <= 0 for >= rows. Without
		// it y·(b-Ax) >= 0 fails and the bound is unsound, so this is a
		// hard error, not a slack.
		switch v.rows[i].op {
		case OpLE:
			if sign < 0 {
				return &dualEval{err: fmt.Errorf("dual vector %d has negative multiplier on <= row %d", idx, i)}
			}
		case OpGE:
			if sign > 0 {
				return &dualEval{err: fmt.Errorf("dual vector %d has positive multiplier on >= row %d", idx, i)}
			}
		}
		base.Add(base, term.Mul(yr, v.rows[i].rhs))
		term = new(big.Rat)
		for _, t := range v.rows[i].terms {
			d[t.j].Sub(d[t.j], term.Mul(yr, t.a))
			term = new(big.Rat)
		}
	}

	// Continuous variables (and integer variables outside IntVars, which
	// the tree never tightens) contribute their sup over the original
	// bounds; integer branching variables are deferred to the leaf boxes.
	ev := &dualEval{base: base, dInt: make([]*big.Rat, len(v.c.IntVars))}
	for k, j := range v.c.IntVars {
		ev.dInt[k] = d[j]
		d[j] = nil // consumed by the per-leaf box terms
	}
	for j := 0; j < n; j++ {
		if d[j] == nil {
			continue
		}
		switch d[j].Sign() {
		case 0:
			continue
		case 1:
			if v.hi[j] == nil {
				return &dualEval{err: fmt.Errorf("dual vector %d leaves variable %d unbounded above", idx, j)}
			}
			base.Add(base, term.Mul(d[j], v.hi[j]))
		case -1:
			if v.lo[j] == nil {
				return &dualEval{err: fmt.Errorf("dual vector %d leaves variable %d unbounded above", idx, j)}
			}
			base.Add(base, term.Mul(d[j], v.lo[j]))
		}
		term = new(big.Rat)
	}
	return ev
}

// ratOf converts a float64 to an exact rational, rejecting NaN and
// infinities.
func ratOf(f float64) (*big.Rat, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("non-finite value %v", f)
	}
	return new(big.Rat).SetFloat64(f), nil
}

// scaledTol returns tol * (scale + |v|): a relative tolerance anchored at
// the magnitude of the quantity being compared.
func scaledTol(tol, scale, v *big.Rat) *big.Rat {
	s := new(big.Rat).Abs(v)
	s.Add(s, scale)
	return s.Mul(s, tol)
}

// floorRat returns the largest integer <= r.
func floorRat(r *big.Rat) *big.Int {
	q := new(big.Int)
	q.Div(r.Num(), r.Denom()) // Euclidean division: floors for positive denominators
	return q
}

// ceilRat returns the smallest integer >= r.
func ceilRat(r *big.Rat) *big.Int {
	neg := new(big.Rat).Neg(r)
	return new(big.Int).Neg(floorRat(neg))
}

// intOfFloat converts an integral float64 to a big.Int exactly; callers
// must have checked integrality.
func intOfFloat(f float64) *big.Int {
	r := new(big.Rat).SetFloat64(f)
	return floorRat(r)
}
