// Benchmarks regenerating every evaluation artifact of the reproduction:
// one benchmark per table/figure (E1-E8) plus the design ablations (A1, A2)
// and micro-benchmarks of the solver substrate. Run with:
//
//	go test -bench=. -benchmem
package secmon_test

import (
	"fmt"
	"io"
	"testing"

	"secmon/internal/casestudy"
	"secmon/internal/certify"
	"secmon/internal/core"
	"secmon/internal/experiment"
	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
	"secmon/internal/simulate"
	"secmon/internal/synth"
)

// caseIndex builds the case-study index or aborts the benchmark.
func caseIndex(b *testing.B) *model.Index {
	b.Helper()
	idx, err := casestudy.BuildIndex()
	if err != nil {
		b.Fatalf("case study: %v", err)
	}
	return idx
}

// synthIndex builds a synthetic index of the given size.
func synthIndex(b *testing.B, monitors, attacks int) *model.Index {
	b.Helper()
	sys, err := synth.Generate(synth.Config{Seed: 1, Monitors: monitors, Attacks: attacks})
	if err != nil {
		b.Fatalf("synth: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		b.Fatalf("index: %v", err)
	}
	return idx
}

// BenchmarkE1CaseStudyBuild measures building and indexing the enterprise
// Web service model (experiment E1's underlying work).
func BenchmarkE1CaseStudyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := casestudy.BuildIndex(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2AttackEvidenceMap measures resolving the attack-evidence
// relation across the case study (experiment E2).
func BenchmarkE2AttackEvidenceMap(b *testing.B) {
	idx := caseIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, aid := range idx.AttackIDs() {
			total += len(idx.AttackEvidence(aid)) + idx.ObservableEvidence(aid)
		}
		if total == 0 {
			b.Fatal("no evidence")
		}
	}
}

// BenchmarkE3OptimalDeployment measures the exact MaxUtility solve at the
// half budget on the case study (experiment E3's central row), across
// branch-and-bound worker counts (workers=1 is the sequential solver).
func BenchmarkE3OptimalDeployment(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := core.NewOptimizer(idx, core.WithWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4BudgetSweep measures the full utility-vs-budget curve with
// baselines (experiment E4).
func BenchmarkE4BudgetSweep(b *testing.B) {
	idx := caseIndex(b)
	opt := core.NewOptimizer(idx)
	grid := core.BudgetGrid(idx, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.ParetoSweep(grid, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5MetricsEvaluation measures the full metric report of a
// mid-size deployment (experiment E5).
func BenchmarkE5MetricsEvaluation(b *testing.B) {
	idx := caseIndex(b)
	res, err := core.NewOptimizer(idx).MaxUtility(idx.System().TotalMonitorCost() * 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := metrics.Evaluate(idx, res.Deployment); rep.Utility <= 0 {
			b.Fatal("zero utility")
		}
	}
}

// BenchmarkE6MinCost measures the MinCost solve at the 90% coverage target
// (experiment E6's hardest feasible row).
func BenchmarkE6MinCost(b *testing.B) {
	idx := caseIndex(b)
	opt := core.NewOptimizer(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MinCost(core.CoverageTargets{Global: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Scalability measures the MaxUtility solve across synthetic
// system sizes (experiment E7); the generation is excluded from the timing.
func BenchmarkE7Scalability(b *testing.B) {
	for _, size := range []struct{ monitors, attacks int }{
		{50, 50}, {100, 100}, {200, 100}, {100, 200}, {400, 100},
	} {
		b.Run(fmt.Sprintf("m=%d/a=%d", size.monitors, size.attacks), func(b *testing.B) {
			idx := synthIndex(b, size.monitors, size.attacks)
			budget := idx.System().TotalMonitorCost() * 0.3
			opt := core.NewOptimizer(idx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Certify measures the E7 400x100 MaxUtility solve with
// certificate emission and verification, the overhead headline for the
// certify feature: compare against BenchmarkE7Scalability/m=400/a=100.
func BenchmarkE7Certify(b *testing.B) {
	idx := synthIndex(b, 400, 100)
	budget := idx.System().TotalMonitorCost() * 0.3
	opt := core.NewOptimizer(idx, core.WithCertificate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := opt.MaxUtility(budget)
		if err != nil {
			b.Fatal(err)
		}
		if res.Certificate == nil {
			b.Fatalf("no certificate: %s", res.CertificateNote)
		}
		if _, err := certify.Verify(res.Certificate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7ScalabilityParallel measures the parallel branch-and-bound on
// the two hardest E7 sizes across worker counts. On a single-CPU host the
// extra workers mostly measure coordination overhead; on multi-core hosts
// this is the scalability headline for the parallel solver.
func BenchmarkE7ScalabilityParallel(b *testing.B) {
	for _, size := range []struct{ monitors, attacks int }{
		{200, 100}, {400, 100},
	} {
		idx := synthIndex(b, size.monitors, size.attacks)
		budget := idx.System().TotalMonitorCost() * 0.3
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("m=%d/a=%d/workers=%d", size.monitors, size.attacks, workers)
			b.Run(name, func(b *testing.B) {
				opt := core.NewOptimizer(idx, core.WithWorkers(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := opt.MaxUtility(budget); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE8Simulation measures the Monte-Carlo validation run (experiment
// E8) at 100 trials per attack.
func BenchmarkE8Simulation(b *testing.B) {
	idx := caseIndex(b)
	res, err := core.NewOptimizer(idx).MaxUtility(idx.System().TotalMonitorCost() * 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := simulate.Config{Seed: int64(i), Trials: 100, ManifestProb: 0.9, CaptureProb: 0.8}
		if _, err := simulate.Run(idx, res.Deployment, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Diving measures branch-and-bound effort with and without the
// root diving heuristic on a 120x120 synthetic system (ablation A1).
func BenchmarkA1Diving(b *testing.B) {
	idx := synthIndex(b, 120, 120)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, mode := range []struct {
		name string
		opts []core.Option
	}{
		{name: "on"},
		{name: "off", opts: []core.Option{core.WithSolverOptions(ilp.WithoutDiving())}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, mode.opts...)
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2Formulation measures the compact shared-coverage encoding
// against the expanded per-(attack, evidence) encoding (ablation A2).
func BenchmarkA2Formulation(b *testing.B) {
	idx := synthIndex(b, 120, 120)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, mode := range []struct {
		name string
		opts []core.Option
	}{
		{name: "compact"},
		{name: "expanded", opts: []core.Option{core.WithExpandedFormulation()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, mode.opts...)
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimplexSolve measures the raw LP substrate on the case-study
// relaxation-sized problem.
func BenchmarkSimplexSolve(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem(lp.Maximize)
		const n = 60
		vars := make([]lp.VarID, n)
		for i := range vars {
			v, err := p.AddVariable("x", 0, 1, float64(i%7+1))
			if err != nil {
				b.Fatal(err)
			}
			vars[i] = v
		}
		for r := 0; r < 40; r++ {
			terms := make([]lp.Term, 0, 8)
			for k := 0; k < 8; k++ {
				terms = append(terms, lp.Term{Var: vars[(r*3+k*5)%n], Coeff: float64(k%5 + 1)})
			}
			if _, err := p.AddConstraint("row", terms, lp.LE, float64(10+r%13)); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	prob := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := prob.Solve()
		if err != nil || sol.Status != lp.StatusOptimal {
			b.Fatalf("solve: %v %v", err, sol.Status)
		}
	}
}

// BenchmarkGreedyBaseline measures the greedy heuristic on a 200x200
// synthetic system.
func BenchmarkGreedyBaseline(b *testing.B) {
	idx := synthIndex(b, 200, 200)
	budget := idx.System().TotalMonitorCost() * 0.3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(idx, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentSuite measures regenerating the fast experiment tables
// end to end (E1, E2, E5 discard their output).
func BenchmarkExperimentSuite(b *testing.B) {
	for _, id := range []string{"E1", "E2", "E5"} {
		e, ok := experiment.ByID(id)
		if !ok {
			b.Fatalf("experiment %s missing", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9MultiObjective measures the weighted utility/richness/
// redundancy solve at the half budget (experiment E9).
func BenchmarkE9MultiObjective(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	opt := core.NewOptimizer(idx)
	weights := core.Objectives{Utility: 1, Richness: 0.5, Redundancy: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MaxWeighted(budget, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Corroboration measures the corroborated (k=2) MaxUtility
// solve at the half budget (experiment E10).
func BenchmarkE10Corroboration(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	opt := core.NewOptimizer(idx, core.WithCorroboration(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MaxUtility(budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11ShadowPrices measures the budget shadow-price sweep
// (experiment E11).
func BenchmarkE11ShadowPrices(b *testing.B) {
	e, ok := experiment.ByID("E11")
	if !ok {
		b.Fatal("experiment E11 missing")
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Robust measures the robust expected-utility solve at a 30%
// failure probability (experiment E12).
func BenchmarkE12Robust(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	opt := core.NewOptimizer(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MaxExpectedUtility(budget, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3BranchRule measures most-fractional vs pseudo-cost branching
// on a 120x120 synthetic system (ablation A3).
func BenchmarkA3BranchRule(b *testing.B) {
	idx := synthIndex(b, 120, 120)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, mode := range []struct {
		name string
		rule ilp.BranchRule
	}{
		{name: "most-fractional", rule: ilp.BranchMostFractional},
		{name: "pseudo-cost", rule: ilp.BranchPseudoCost},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, core.WithSolverOptions(ilp.WithBranchRule(mode.rule)))
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// blockIndex builds a block-structured synthetic index: monitors and data
// types grouped into loosely connected segments, the shape the decomposition
// solver exploits (experiment E9 scale family).
func blockIndex(b *testing.B, monitors, attacks, segments int, cross float64) *model.Index {
	b.Helper()
	sys, err := synth.Generate(synth.Config{
		Seed: 9, Monitors: monitors, Attacks: attacks,
		Segments: segments, CrossFraction: cross,
	})
	if err != nil {
		b.Fatalf("synth: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		b.Fatalf("index: %v", err)
	}
	return idx
}

// BenchmarkE9Scale measures the graph-partitioned decomposition solver on
// block-structured instances 10-100x beyond the E7 sizes (experiment E9).
// Every solve must return a PROVEN optimum — the benchmark fails otherwise,
// so the recorded times are certified-optimality times, not heuristic times.
// The workers=1/workers=8 pairs feed the parallel-speedup assertion in
// tools/benchjson (skipped on single-CPU hosts).
func BenchmarkE9Scale(b *testing.B) {
	// Sub-benchmark names avoid '=' so the -speedup slow=fast:minratio spec
	// in tools/benchjson parses unambiguously.
	b.Run("mincost/5000x1000", func(b *testing.B) {
		idx := blockIndex(b, 5000, 1000, 100, 0)
		targets := core.CoverageTargets{Global: 0.9}
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
				opt := core.NewOptimizer(idx, core.WithClampToAchievable(),
					core.WithDecomposition(), core.WithWorkers(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := opt.MinCost(targets)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Proven {
						b.Fatalf("not proven: status %s gap %v", res.Status, res.Gap)
					}
				}
			})
		}
	})
	b.Run("maxutil/1200x240", func(b *testing.B) {
		idx := blockIndex(b, 1200, 240, 24, 0.02)
		budget := idx.System().TotalMonitorCost() * 0.2
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
				opt := core.NewOptimizer(idx,
					core.WithDecomposition(), core.WithWorkers(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := opt.MaxUtility(budget)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Proven {
						b.Fatalf("not proven: status %s gap %v", res.Status, res.Gap)
					}
				}
			})
		}
	})
}
