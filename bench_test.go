// Benchmarks regenerating every evaluation artifact of the reproduction:
// one benchmark per table/figure (E1-E8) plus the design ablations (A1, A2)
// and micro-benchmarks of the solver substrate. Run with:
//
//	go test -bench=. -benchmem
package secmon_test

import (
	"fmt"
	"io"
	"testing"

	"secmon/internal/campaign"
	"secmon/internal/casestudy"
	"secmon/internal/certify"
	"secmon/internal/core"
	"secmon/internal/experiment"
	"secmon/internal/ilp"
	"secmon/internal/lp"
	"secmon/internal/metrics"
	"secmon/internal/model"
	"secmon/internal/simulate"
	"secmon/internal/state"
	"secmon/internal/synth"
)

// caseIndex builds the case-study index or aborts the benchmark.
func caseIndex(b *testing.B) *model.Index {
	b.Helper()
	idx, err := casestudy.BuildIndex()
	if err != nil {
		b.Fatalf("case study: %v", err)
	}
	return idx
}

// synthIndex builds a synthetic index of the given size.
func synthIndex(b *testing.B, monitors, attacks int) *model.Index {
	b.Helper()
	sys, err := synth.Generate(synth.Config{Seed: 1, Monitors: monitors, Attacks: attacks})
	if err != nil {
		b.Fatalf("synth: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		b.Fatalf("index: %v", err)
	}
	return idx
}

// BenchmarkE1CaseStudyBuild measures building and indexing the enterprise
// Web service model (experiment E1's underlying work).
func BenchmarkE1CaseStudyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := casestudy.BuildIndex(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2AttackEvidenceMap measures resolving the attack-evidence
// relation across the case study (experiment E2).
func BenchmarkE2AttackEvidenceMap(b *testing.B) {
	idx := caseIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, aid := range idx.AttackIDs() {
			total += len(idx.AttackEvidence(aid)) + idx.ObservableEvidence(aid)
		}
		if total == 0 {
			b.Fatal("no evidence")
		}
	}
}

// BenchmarkE3OptimalDeployment measures the exact MaxUtility solve at the
// half budget on the case study (experiment E3's central row), across
// branch-and-bound worker counts (workers=1 is the sequential solver).
func BenchmarkE3OptimalDeployment(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := core.NewOptimizer(idx, core.WithWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4BudgetSweep measures the full utility-vs-budget curve with
// baselines (experiment E4).
func BenchmarkE4BudgetSweep(b *testing.B) {
	idx := caseIndex(b)
	opt := core.NewOptimizer(idx)
	grid := core.BudgetGrid(idx, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.ParetoSweep(grid, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5MetricsEvaluation measures the full metric report of a
// mid-size deployment (experiment E5).
func BenchmarkE5MetricsEvaluation(b *testing.B) {
	idx := caseIndex(b)
	res, err := core.NewOptimizer(idx).MaxUtility(idx.System().TotalMonitorCost() * 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := metrics.Evaluate(idx, res.Deployment); rep.Utility <= 0 {
			b.Fatal("zero utility")
		}
	}
}

// BenchmarkE6MinCost measures the MinCost solve at the 90% coverage target
// (experiment E6's hardest feasible row).
func BenchmarkE6MinCost(b *testing.B) {
	idx := caseIndex(b)
	opt := core.NewOptimizer(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MinCost(core.CoverageTargets{Global: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Scalability measures the MaxUtility solve across synthetic
// system sizes (experiment E7); the generation is excluded from the timing.
func BenchmarkE7Scalability(b *testing.B) {
	for _, size := range []struct{ monitors, attacks int }{
		{50, 50}, {100, 100}, {200, 100}, {100, 200}, {400, 100},
	} {
		b.Run(fmt.Sprintf("m=%d/a=%d", size.monitors, size.attacks), func(b *testing.B) {
			idx := synthIndex(b, size.monitors, size.attacks)
			budget := idx.System().TotalMonitorCost() * 0.3
			opt := core.NewOptimizer(idx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Certify measures the E7 400x100 MaxUtility solve with
// certificate emission and verification, the overhead headline for the
// certify feature: compare against BenchmarkE7Scalability/m=400/a=100.
func BenchmarkE7Certify(b *testing.B) {
	idx := synthIndex(b, 400, 100)
	budget := idx.System().TotalMonitorCost() * 0.3
	opt := core.NewOptimizer(idx, core.WithCertificate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := opt.MaxUtility(budget)
		if err != nil {
			b.Fatal(err)
		}
		if res.Certificate == nil {
			b.Fatalf("no certificate: %s", res.CertificateNote)
		}
		if _, err := certify.Verify(res.Certificate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Kernels pits the LU basis kernel (the sparse default) against
// the retained eta-file kernel on the E7 headline size (400 monitors x 100
// attacks MaxUtility). The two rows land in the benchmark JSON side by side
// and `make bench` asserts the recorded eta/lu ratio floor via
// tools/benchjson -ratio, so the LU speedup is re-proven on every recording
// environment rather than eyeballed across files.
func BenchmarkE7Kernels(b *testing.B) {
	idx := synthIndex(b, 400, 100)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, k := range []struct {
		name   string
		kernel lp.Kernel
	}{{"lu", lp.KernelLU}, {"eta", lp.KernelEta}} {
		b.Run(k.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, core.WithKernel(k.kernel))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7ScalabilityParallel measures the parallel branch-and-bound on
// the two hardest E7 sizes across worker counts. On a single-CPU host the
// extra workers mostly measure coordination overhead; on multi-core hosts
// this is the scalability headline for the parallel solver.
func BenchmarkE7ScalabilityParallel(b *testing.B) {
	for _, size := range []struct{ monitors, attacks int }{
		{200, 100}, {400, 100},
	} {
		idx := synthIndex(b, size.monitors, size.attacks)
		budget := idx.System().TotalMonitorCost() * 0.3
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("m=%d/a=%d/workers=%d", size.monitors, size.attacks, workers)
			b.Run(name, func(b *testing.B) {
				opt := core.NewOptimizer(idx, core.WithWorkers(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := opt.MaxUtility(budget); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE8Simulation measures the Monte-Carlo validation run (experiment
// E8) at 100 trials per attack.
func BenchmarkE8Simulation(b *testing.B) {
	idx := caseIndex(b)
	res, err := core.NewOptimizer(idx).MaxUtility(idx.System().TotalMonitorCost() * 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := simulate.Config{Seed: int64(i), Trials: 100, ManifestProb: 0.9, CaptureProb: 0.8}
		if _, err := simulate.Run(idx, res.Deployment, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Diving measures branch-and-bound effort with and without the
// root diving heuristic on a 120x120 synthetic system (ablation A1).
func BenchmarkA1Diving(b *testing.B) {
	idx := synthIndex(b, 120, 120)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, mode := range []struct {
		name string
		opts []core.Option
	}{
		{name: "on"},
		{name: "off", opts: []core.Option{core.WithSolverOptions(ilp.WithoutDiving())}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, mode.opts...)
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2Formulation measures the compact shared-coverage encoding
// against the expanded per-(attack, evidence) encoding (ablation A2).
func BenchmarkA2Formulation(b *testing.B) {
	idx := synthIndex(b, 120, 120)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, mode := range []struct {
		name string
		opts []core.Option
	}{
		{name: "compact"},
		{name: "expanded", opts: []core.Option{core.WithExpandedFormulation()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, mode.opts...)
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimplexSolve measures the raw LP substrate on the case-study
// relaxation-sized problem.
func BenchmarkSimplexSolve(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem(lp.Maximize)
		const n = 60
		vars := make([]lp.VarID, n)
		for i := range vars {
			v, err := p.AddVariable("x", 0, 1, float64(i%7+1))
			if err != nil {
				b.Fatal(err)
			}
			vars[i] = v
		}
		for r := 0; r < 40; r++ {
			terms := make([]lp.Term, 0, 8)
			for k := 0; k < 8; k++ {
				terms = append(terms, lp.Term{Var: vars[(r*3+k*5)%n], Coeff: float64(k%5 + 1)})
			}
			if _, err := p.AddConstraint("row", terms, lp.LE, float64(10+r%13)); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	prob := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := prob.Solve()
		if err != nil || sol.Status != lp.StatusOptimal {
			b.Fatalf("solve: %v %v", err, sol.Status)
		}
	}
}

// BenchmarkGreedyBaseline measures the greedy heuristic on a 200x200
// synthetic system.
func BenchmarkGreedyBaseline(b *testing.B) {
	idx := synthIndex(b, 200, 200)
	budget := idx.System().TotalMonitorCost() * 0.3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(idx, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentSuite measures regenerating the fast experiment tables
// end to end (E1, E2, E5 discard their output).
func BenchmarkExperimentSuite(b *testing.B) {
	for _, id := range []string{"E1", "E2", "E5"} {
		e, ok := experiment.ByID(id)
		if !ok {
			b.Fatalf("experiment %s missing", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9MultiObjective measures the weighted utility/richness/
// redundancy solve at the half budget (experiment E9).
func BenchmarkE9MultiObjective(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	opt := core.NewOptimizer(idx)
	weights := core.Objectives{Utility: 1, Richness: 0.5, Redundancy: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MaxWeighted(budget, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Corroboration measures the corroborated (k=2) MaxUtility
// solve at the half budget (experiment E10).
func BenchmarkE10Corroboration(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	opt := core.NewOptimizer(idx, core.WithCorroboration(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MaxUtility(budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11ShadowPrices measures the budget shadow-price sweep
// (experiment E11).
func BenchmarkE11ShadowPrices(b *testing.B) {
	e, ok := experiment.ByID("E11")
	if !ok {
		b.Fatal("experiment E11 missing")
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Robust measures the robust expected-utility solve at a 30%
// failure probability (experiment E12).
func BenchmarkE12Robust(b *testing.B) {
	idx := caseIndex(b)
	budget := idx.System().TotalMonitorCost() * 0.5
	opt := core.NewOptimizer(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.MaxExpectedUtility(budget, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3BranchRule measures most-fractional vs pseudo-cost branching
// on a 120x120 synthetic system (ablation A3).
func BenchmarkA3BranchRule(b *testing.B) {
	idx := synthIndex(b, 120, 120)
	budget := idx.System().TotalMonitorCost() * 0.3
	for _, mode := range []struct {
		name string
		rule ilp.BranchRule
	}{
		{name: "most-fractional", rule: ilp.BranchMostFractional},
		{name: "pseudo-cost", rule: ilp.BranchPseudoCost},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, core.WithSolverOptions(ilp.WithBranchRule(mode.rule)))
			for i := 0; i < b.N; i++ {
				if _, err := opt.MaxUtility(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// blockIndex builds a block-structured synthetic index: monitors and data
// types grouped into loosely connected segments, the shape the decomposition
// solver exploits (experiment E9 scale family).
func blockIndex(b *testing.B, monitors, attacks, segments int, cross float64) *model.Index {
	b.Helper()
	sys, err := synth.Generate(synth.Config{
		Seed: 9, Monitors: monitors, Attacks: attacks,
		Segments: segments, CrossFraction: cross,
	})
	if err != nil {
		b.Fatalf("synth: %v", err)
	}
	idx, err := model.NewIndex(sys)
	if err != nil {
		b.Fatalf("index: %v", err)
	}
	return idx
}

// BenchmarkE9Scale measures the graph-partitioned decomposition solver on
// block-structured instances 10-100x beyond the E7 sizes (experiment E9).
// Every solve must return a PROVEN optimum — the benchmark fails otherwise,
// so the recorded times are certified-optimality times, not heuristic times.
// The workers=1/workers=8 pairs feed the parallel-speedup assertion in
// tools/benchjson (skipped on single-CPU hosts).
func BenchmarkE9Scale(b *testing.B) {
	// Sub-benchmark names avoid '=' so the -speedup slow=fast:minratio spec
	// in tools/benchjson parses unambiguously.
	b.Run("mincost/5000x1000", func(b *testing.B) {
		idx := blockIndex(b, 5000, 1000, 100, 0)
		targets := core.CoverageTargets{Global: 0.9}
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
				opt := core.NewOptimizer(idx, core.WithClampToAchievable(),
					core.WithDecomposition(), core.WithWorkers(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := opt.MinCost(targets)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Proven {
						b.Fatalf("not proven: status %s gap %v", res.Status, res.Gap)
					}
				}
			})
		}
	})
	b.Run("maxutil/1200x240", func(b *testing.B) {
		idx := blockIndex(b, 1200, 240, 24, 0.02)
		budget := idx.System().TotalMonitorCost() * 0.2
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
				opt := core.NewOptimizer(idx,
					core.WithDecomposition(), core.WithWorkers(workers))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := opt.MaxUtility(budget)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Proven {
						b.Fatalf("not proven: status %s gap %v", res.Status, res.Gap)
					}
				}
			})
		}
	})
}

// BenchmarkE9Kernels repeats the E9 mincost 5000x1000 single-worker
// decomposition solve under each sparse kernel. Every solve must still be
// proven optimal. The integral rounding of coverage right-hand sides
// (requiredEvidence) collapsed these subproblems to a few nodes over tiny
// bases, where the two kernels run at parity, so `make bench` asserts no
// eta/lu floor here — the rows are recorded as a regression canary. The
// LU advantage is asserted on BenchmarkE7Kernels, whose 400-row bases
// exercise the factorization.
func BenchmarkE9Kernels(b *testing.B) {
	idx := blockIndex(b, 5000, 1000, 100, 0)
	targets := core.CoverageTargets{Global: 0.9}
	for _, k := range []struct {
		name   string
		kernel lp.Kernel
	}{{"lu", lp.KernelLU}, {"eta", lp.KernelEta}} {
		b.Run(k.name, func(b *testing.B) {
			opt := core.NewOptimizer(idx, core.WithClampToAchievable(),
				core.WithDecomposition(), core.WithKernel(k.kernel))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := opt.MinCost(targets)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Proven {
					b.Fatalf("not proven: status %s gap %v", res.Status, res.Gap)
				}
			}
		})
	}
}

// stateTenant opens a fresh event-log store in a benchmark temp directory
// and creates one E7-sized (400 monitors x 100 attacks) max-utility tenant
// at the standard 30% budget, solved sequentially so every re-solve is
// bit-reproducible.
func stateTenant(b *testing.B) *state.Tenant {
	b.Helper()
	sys, err := synth.Generate(synth.Config{Seed: 1, Monitors: 400, Attacks: 100})
	if err != nil {
		b.Fatalf("synth: %v", err)
	}
	store, err := state.Open(b.TempDir())
	if err != nil {
		b.Fatalf("open store: %v", err)
	}
	b.Cleanup(func() { store.Close() })
	total := 0.0
	for i := range sys.Monitors {
		total += sys.Monitors[i].TotalCost()
	}
	tn, err := store.Create("bench", sys, state.SolveSpec{Budget: 0.3 * total, Workers: 1})
	if err != nil {
		b.Fatalf("create tenant: %v", err)
	}
	return tn
}

// sameMonitors reports whether two result monitor lists are identical
// (both are canonically sorted by the solver).
func sameMonitors(a, c []model.MonitorID) bool {
	if len(a) != len(c) {
		return false
	}
	for i := range a {
		if a[i] != c[i] {
			return false
		}
	}
	return true
}

// BenchmarkE10Incremental measures the event-sourced incremental re-solve
// against from-scratch solves of the identical mutated instance on an
// E7-sized tenant. Sub-benchmarks:
//
//	mutate-warm     one budget mutation per op, re-solved incrementally
//	                (includes the log commit + fsync)
//	mutate-scratch  the same mutation stream, but timing the from-scratch
//	                solve of each mutated instance
//	shortcut        a cost increase proven still-optimal by the sensitivity
//	                shortcut: zero branch-and-bound nodes, no LP re-solve
//	stream20        a 20-mutation stream (cost bumps and restores across 10
//	                monitors) re-solved incrementally vs from scratch
//
// The recorded floors (see `make statebench`): mutate-scratch must be at
// least 5x mutate-warm (median of 5), stream20-scratch at least 2x
// stream20-warm, and the shortcut path must resolve with zero nodes
// (asserted here, per iteration).
func BenchmarkE10Incremental(b *testing.B) {
	// outsideMonitor finds a monitor the tenant's current optimum does not
	// deploy. Decreasing its cost slightly is the representative small
	// mutation: a cost decrease is never eligible for the state-level
	// sensitivity shortcut (it can admit new feasible sets), so the warm
	// machinery must genuinely re-solve — remapped basis, repriced LP
	// relaxation, repaired incumbent.
	outsideMonitor := func(b *testing.B, tn *state.Tenant) model.MonitorID {
		b.Helper()
		selected := make(map[model.MonitorID]bool)
		for _, id := range tn.Last().Monitors {
			selected[id] = true
		}
		sys := tn.System()
		for i := range sys.Monitors {
			if !selected[sys.Monitors[i].ID] {
				return sys.Monitors[i].ID
			}
		}
		b.Fatal("every monitor selected")
		return ""
	}
	// decrease returns the delta for iteration i: a monotone ~0.05% cost
	// decay, so every mutation is a genuine perturbation yet the monitor
	// stays unattractive across any realistic iteration count.
	decrease := func(tn *state.Tenant, id model.MonitorID) state.Delta {
		sys := tn.System()
		for j := range sys.Monitors {
			if sys.Monitors[j].ID == id {
				c := sys.Monitors[j].CapitalCost * 0.9995
				return state.Delta{Op: state.OpUpdateCost, MonitorID: id, CapitalCost: &c}
			}
		}
		return state.Delta{}
	}

	b.Run("mutate-warm", func(b *testing.B) {
		tn := stateTenant(b)
		id := outsideMonitor(b, tn)
		// Prove the incremental result bit-identical to a from-scratch
		// solve of the mutated instance before timing it: bitwise-equal
		// objective and proven bound. A differing monitor set must be an
		// exact tie — same objective, within budget (the full differential
		// suite lives in internal/state).
		res, err := tn.Mutate([]state.Delta{decrease(tn, id)})
		if err != nil {
			b.Fatal(err)
		}
		scr, err := tn.SolveScratch()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Proven || !scr.Proven ||
			res.Utility != scr.Utility || res.BestBound != scr.BestBound {
			b.Fatalf("incremental result diverges from scratch:\n inc proven=%v %v %v\n scr proven=%v %v %v",
				res.Proven, res.Utility, res.BestBound, scr.Proven, scr.Utility, scr.BestBound)
		}
		if sameMonitors(res.Monitors, scr.Monitors) {
			if res.Cost != scr.Cost {
				b.Fatalf("same set, different cost: %v vs %v", res.Cost, scr.Cost)
			}
		} else if res.Cost > tn.Spec().Budget+1e-9 {
			b.Fatalf("tie set exceeds budget: cost %v > %v", res.Cost, tn.Spec().Budget)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tn.Mutate([]state.Delta{decrease(tn, id)}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("mutate-scratch", func(b *testing.B) {
		tn := stateTenant(b)
		id := outsideMonitor(b, tn)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if _, err := tn.Mutate([]state.Delta{decrease(tn, id)}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := tn.SolveScratch(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("shortcut", func(b *testing.B) {
		tn := stateTenant(b)
		// Pick a monitor outside the optimal set: increasing its cost can
		// only hurt competitors of the incumbent, so the sensitivity
		// shortcut must prove the previous optimum still optimal with zero
		// branch-and-bound nodes.
		selected := make(map[model.MonitorID]bool)
		for _, id := range tn.Last().Monitors {
			selected[id] = true
		}
		sys := tn.System()
		var outside *model.Monitor
		for i := range sys.Monitors {
			if !selected[sys.Monitors[i].ID] {
				outside = &sys.Monitors[i]
				break
			}
		}
		if outside == nil {
			b.Fatal("every monitor selected; cannot exercise the shortcut")
		}
		cost := outside.CapitalCost
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cost *= 1.01
			c := cost
			res, err := tn.Mutate([]state.Delta{{Op: state.OpUpdateCost, MonitorID: outside.ID, CapitalCost: &c}})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Shortcut == "" || res.Stats.Nodes != 0 {
				b.Fatalf("expected a zero-node sensitivity shortcut, got shortcut=%q nodes=%d",
					res.Stats.Shortcut, res.Stats.Nodes)
			}
		}
	})

	// stream20 applies 20 mutations per op: cost bumps and restores across
	// 10 distinct monitors, so the tenant returns to its starting state
	// every iteration and the stream mixes shortcut-eligible and full
	// re-solve mutations like a live reconfiguration burst would.
	stream := func(b *testing.B, tn *state.Tenant, scratch bool) {
		sys := tn.System()
		if len(sys.Monitors) < 10 {
			b.Fatal("stream needs 10 monitors")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 20; j++ {
				m := &sys.Monitors[j/2]
				c := m.CapitalCost * 2
				if j%2 == 1 {
					c = m.CapitalCost
				}
				if scratch {
					b.StopTimer()
				}
				if _, err := tn.Mutate([]state.Delta{{Op: state.OpUpdateCost, MonitorID: m.ID, CapitalCost: &c}}); err != nil {
					b.Fatal(err)
				}
				if scratch {
					b.StartTimer()
					if _, err := tn.SolveScratch(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("stream20-warm", func(b *testing.B) { stream(b, stateTenant(b), false) })
	b.Run("stream20-scratch", func(b *testing.B) { stream(b, stateTenant(b), true) })
}

// BenchmarkCampaignThroughput measures the discrete-event campaign engine on
// the case study with the full deployment and a benign background, reporting
// simulated events and campaigns per second as extra metrics alongside the
// usual ns/op. The workload is fixed (20k campaigns) so events/s is
// comparable across worker counts and commits.
func BenchmarkCampaignThroughput(b *testing.B) {
	idx := caseIndex(b)
	d := model.NewDeployment(idx.MonitorIDs()...)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			cfg := campaign.Config{
				Seed: 1, Trials: 20_000, Warmup: 1000, Workers: workers,
				BenignRate: 20, ManifestProb: 0.9, CaptureProb: 0.8, LateralProb: 0.1,
			}
			var events, benign int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := campaign.Run(idx, d, cfg)
				if err != nil {
					b.Fatal(err)
				}
				events, benign = sum.Events, sum.BenignEvents
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(events+benign)/perOp, "events/s")
			b.ReportMetric(float64(cfg.Trials)/perOp, "trials/s")
		})
	}
}
